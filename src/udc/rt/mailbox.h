// Per-process mailbox for the live runtime: the R2 "one event at a time"
// discipline, concurrently.
//
// Every worker thread owns exactly one Mailbox and is its only consumer; the
// transport dispatcher, the supervisor, and peer-driven deliveries are the
// producers.  A closed mailbox models a down process: pushes are refused
// (the transport treats that as a channel loss and keeps retrying under its
// backoff schedule), and queued mail is discarded — a crashed process loses
// exactly its undelivered input, nothing else.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "udc/common/types.h"
#include "udc/event/message.h"

namespace udc {

// One unit of worker input.  kDeliver carries a transport delivery (protocol
// message or heartbeat), kInit an environment init directive, kStop the
// shutdown request.
struct RtMail {
  enum class Kind { kDeliver, kInit, kStop };
  Kind kind = Kind::kStop;
  ProcessId from = kInvalidProcess;  // kDeliver: sender
  Message msg;                       // kDeliver payload
  Time send_tick = 0;  // kDeliver: tick at which the sender recorded the
                       // kSend (0 for below-model traffic) — the receiver
                       // asserts its recv tick is strictly larger (R3)
  ActionId action = kInvalidAction;  // kInit
};

// Outcome of a push, so no producer ever has to guess why its mail vanished:
// kAccepted means the consumer will see it; kClosed means the mailbox
// belongs to a down process and the mail was refused — the transport treats
// that as channel loss and keeps retrying, the supervisor counts it.
enum class MailboxPush { kAccepted, kClosed };

class Mailbox {
 public:
  // kClosed iff the mailbox is closed (the process is down); the mail is
  // then refused, exactly like a message lost on the wire.
  MailboxPush push(RtMail mail) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return MailboxPush::kClosed;
      queue_.push_back(std::move(mail));
    }
    cv_.notify_one();
    return MailboxPush::kAccepted;
  }

  // Pops the next mail, waiting up to `timeout`.  nullopt on timeout or
  // close — the worker loop uses the timeout slot for pacing (heartbeats,
  // detector polls, protocol on_tick).
  std::optional<RtMail> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    RtMail mail = std::move(queue_.front());
    queue_.pop_front();
    return mail;
  }

  // Refuses future pushes, discards queued mail, and wakes the consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      queue_.clear();
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RtMail> queue_;
  bool closed_ = false;
};

}  // namespace udc
