// Failure-detector quality-of-service metrics (in the spirit of Chen,
// Toueg & Aguilera's QoS framework): the quantitative axis behind the
// class labels.  The paper's results say WHICH class is needed; these
// metrics say what a class instance costs and delivers in a run:
//
//   detection latency   — crash_q -> first time a given correct observer's
//                         in-force report contains q;
//   false-positive time — total observer-time during which a live process
//                         is suspected (the accuracy defect, integrated);
//   report load         — failure-detector events per process per tick
//                         (what the detector costs the event budget).
#pragma once

#include <optional>
#include <vector>

#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

struct FdQuality {
  // Over all (correct observer, faulty process) pairs that were detected:
  std::size_t detections = 0;
  std::size_t missed = 0;  // pairs never detected within the horizon
  double mean_detection_latency = 0;
  Time max_detection_latency = 0;
  // Integrated false suspicion: sum over (observer, victim, tick) of
  // "victim suspected while alive", normalized per observer-tick.
  double false_positive_rate = 0;
  // Failure-detector events per process-tick.
  double report_load = 0;
};

FdQuality measure_fd_quality(const Run& r);
FdQuality measure_fd_quality(const System& sys);

}  // namespace udc
