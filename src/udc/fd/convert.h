// Failure-detector conversions (Propositions 2.1 and 2.2) and the run
// transformation machinery shared with the knowledge-theoretic
// constructions of Theorems 3.6 / 4.3.
//
// §2.2 frames a conversion as a function f mapping runs to runs: all non-FD
// events of r appear in f(r) in order, while failure-detector events may be
// replaced and extra events inserted.  The new FD events are the ones
// checked when asking whether the converted system satisfies a property.
#pragma once

#include <functional>

#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

// The paper's P1-P2 doubling: even steps of f(r) replay r's non-FD events
// (the event entering r_p at original time m+1 enters f(r)_p at 2m+2);
// original FD events are dropped; at each odd step 2m+1, `reporter(p, m)`
// may emit a fresh FD event for each still-live process, computed from the
// original point (r, m).  P3 of Theorem 3.6 instantiates `reporter` with
// knowledge-based suspicions (see kt/simulate_fd.h).
Run interleave_reports(
    const Run& r,
    const std::function<std::optional<Event>(ProcessId, Time)>& reporter);

// Proposition 2.2: impermanent-strong completeness -> strong completeness,
// by making each process's report the running union of everything its
// detector has ever reported.  Accuracy is preserved: the union only
// contains processes that were (accurately) reported crashed earlier.
Run convert_impermanent_to_permanent(const Run& r);
System convert_impermanent_to_permanent(const System& sys);

// Proposition 2.1: weak completeness -> strong completeness via suspicion
// gossip.  This conversion needs the extra communication to already be in
// the run: processes must exchange kSuspicionGossip messages carrying their
// cumulative suspicions (the SuspicionGossiper protocol mixin in
// coord/nudc_protocol.h does this).  Each process's converted report is the
// union of its own detector reports and every gossiped set it has received.
// Weak accuracy is preserved: the union over all processes still excludes
// the never-suspected correct process.
Run convert_weak_to_strong_via_gossip(const Run& r);
System convert_weak_to_strong_via_gossip(const System& sys);

// The CT96 dW -> dS conversion: processes gossip their CURRENT suspicions
// (SuspicionGossiper::Mode::kCurrent), and the converted report is the
// union of each source's LATEST contribution — so a pre-stabilization
// false suspicion is eventually retracted everywhere, preserving EVENTUAL
// weak accuracy, while the union upgrades weak completeness to strong.
//
// `lease`: a source's contribution expires unless refreshed within `lease`
// ticks.  Without it, a process that crashed while holding pre-
// stabilization noise would poison the union forever (its gossip is never
// retracted), killing eventual weak accuracy; with it, only sources that
// keep talking — the correct ones, whose post-stabilization reports are
// clean — contribute in the limit.
Run convert_eventually_weak_to_strong(const Run& r, Time lease = 60);
System convert_eventually_weak_to_strong(const System& sys, Time lease = 60);

}  // namespace udc
