// The full Chandra-Toueg failure-detector lattice.
//
// CT96 classify detectors by completeness {strong, weak} × accuracy
// {strong, weak, eventually-strong, eventually-weak}, giving eight classes:
//
//                 strong acc   weak acc   ev-strong acc   ev-weak acc
//   strong comp       P            S           ◇P             ◇S
//   weak comp         Q            W           ◇Q             ◇W
//
// The paper's Table 1 lives in the left half plus ◇W; the benches print
// this whole lattice as measured from generated runs (bench_fd_lattice).
// classify_ct() combines the perpetual property checkers with the eventual
// accuracy checkers into the strongest class a run/system certifies.
#pragma once

#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"

namespace udc {

enum class CtLatticeClass {
  kP,          // strong completeness, strong accuracy  (Perfect)
  kS,          // strong completeness, weak accuracy    (Strong)
  kQ,          // weak completeness, strong accuracy
  kW,          // weak completeness, weak accuracy      (Weak)
  kDiamondP,   // strong completeness, eventual strong accuracy
  kDiamondS,   // strong completeness, eventual weak accuracy
  kDiamondQ,   // weak completeness, eventual strong accuracy
  kDiamondW,   // weak completeness, eventual weak accuracy
  kNone,
};

const char* ct_class_name(CtLatticeClass c);

// The strongest lattice class certified by the run/system: completeness
// from the perpetual checkers, accuracy preferring perpetual over eventual.
// `grace` excuses near-horizon crashes as in check_fd_properties.
CtLatticeClass classify_ct(const Run& r, Time grace = 0);
CtLatticeClass classify_ct(const System& sys, Time grace = 0);

// Partial order on the lattice: a ≼ b iff every detector in class b also
// belongs to class a (b is stronger).  kNone is the bottom.
bool ct_at_least(CtLatticeClass have, CtLatticeClass want);

// The detector oracle for class Q: weak completeness with never a false
// suspicion — exactly a zero-noise WeakOracle, named for discoverability.
using QOracle = WeakOracle;  // construct with false_rate = 0.0

}  // namespace udc
