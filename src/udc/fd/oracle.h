// Failure-detector oracles.
//
// §2.2: a failure detector is a per-process oracle emitting suspicion
// reports; the report lands in the process's history as a suspect_p(S) (or
// generalized suspect_p(S,k)) event.  Our oracles see the ground-truth crash
// schedule (exactly the Chandra-Toueg model, where the "special tape" is a
// function of the failure pattern) and are constructed so that the system a
// simulation generates satisfies the advertised accuracy/completeness
// properties.  fd/properties.h re-verifies those properties on every
// generated run — oracles are trusted for construction, never for checking.
//
// One oracle instance serves one run: begin_run() is called with the crash
// schedule before the first tick.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/event/event.h"

namespace udc {

// Ground truth handed to oracles: who will crash and when.
class CrashPlan {
 public:
  CrashPlan() = default;
  CrashPlan(int n, std::vector<std::optional<Time>> times)
      : n_(n), times_(std::move(times)) {}

  int n() const { return n_; }
  std::optional<Time> crash_time(ProcessId p) const { return times_[p]; }
  bool is_faulty(ProcessId p) const { return times_[p].has_value(); }
  ProcSet faulty_set() const {
    ProcSet s;
    for (ProcessId p = 0; p < n_; ++p) {
      if (times_[p]) s.insert(p);
    }
    return s;
  }
  ProcSet crashed_by(Time m) const {
    ProcSet s;
    for (ProcessId p = 0; p < n_; ++p) {
      if (times_[p] && *times_[p] <= m) s.insert(p);
    }
    return s;
  }

 private:
  int n_ = 0;
  std::vector<std::optional<Time>> times_;
};

class FdOracle {
 public:
  virtual ~FdOracle() = default;

  // Called once per run, before any report() call.
  virtual void begin_run(const CrashPlan& plan, std::uint64_t seed) = 0;

  // Possibly emits a failure-detector event for process p at time `now`.
  // Returning nullopt means p's slot this tick is free for other events.
  virtual std::optional<Event> report(ProcessId p, Time now) = 0;
};

// Factory signature: benches/system generators create one oracle per run.
using FdOracleFactory = std::unique_ptr<FdOracle> (*)();

// ---------------------------------------------------------------------------
// Standard oracles.  `period` is how often (in ticks) the detector gets a
// chance to report.  Reports are CHANGE-DRIVEN: at a period tick the oracle
// emits only if its output for that observer differs from its last emission
// (the impermanent oracles additionally emit one explicit retraction).
// Rationale: each report consumes the observer's one-event-per-tick slot, so
// an always-chattering detector starves the message plane; a change-driven
// one leaves Suspects_p(r, m) — the "most recent report" semantics of §2.2 —
// identical while touching only O(#failures) slots.
// ---------------------------------------------------------------------------

// Strong completeness + strong accuracy: reports exactly the set of
// processes that have crashed so far.
class PerfectOracle final : public FdOracle {
 public:
  explicit PerfectOracle(Time period = 4) : period_(period) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  CrashPlan plan_;
  std::vector<ProcSet> last_emitted_;
  std::vector<bool> emitted_once_;
};

// Strong completeness + weak accuracy: reports crashed-so-far plus sticky
// false suspicions of correct processes, never touching one designated
// correct process ("the protected process", the q* of Prop 3.1's proof).
class StrongOracle final : public FdOracle {
 public:
  // false_rate: per-report probability of adding one new false suspicion.
  explicit StrongOracle(Time period = 4, double false_rate = 0.2)
      : period_(period), false_rate_(false_rate) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  double false_rate_;
  CrashPlan plan_;
  std::optional<Rng> rng_;
  ProcessId protected_ = kInvalidProcess;
  std::vector<ProcSet> false_suspicions_;  // per observer, sticky
  std::vector<ProcSet> last_emitted_;
  std::vector<bool> emitted_once_;
};

// Weak completeness + weak accuracy: each faulty process is permanently
// suspected by one designated correct watcher only (others may never hear
// of it); plus optional sticky false suspicions away from the protected
// process.
class WeakOracle final : public FdOracle {
 public:
  explicit WeakOracle(Time period = 4, double false_rate = 0.0)
      : period_(period), false_rate_(false_rate) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  double false_rate_;
  CrashPlan plan_;
  std::optional<Rng> rng_;
  ProcessId protected_ = kInvalidProcess;
  std::vector<ProcessId> watcher_;  // per faulty process, correct watcher
  std::vector<ProcSet> false_suspicions_;
  std::vector<ProcSet> last_emitted_;
  std::vector<bool> emitted_once_;
};

// Impermanent strong completeness + weak accuracy: every correct process
// suspects each faulty process at least once, but the suspicion is then
// dropped (subsequent reports may be empty).  This is the detector class of
// Cor 3.2 / Prop 2.2's input.
class ImpermanentStrongOracle final : public FdOracle {
 public:
  explicit ImpermanentStrongOracle(Time period = 4) : period_(period) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  CrashPlan plan_;
  std::vector<ProcSet> reported_;  // per observer: already reported once
  std::vector<bool> retraction_pending_;
};

// Impermanent weak completeness + weak accuracy.
class ImpermanentWeakOracle final : public FdOracle {
 public:
  explicit ImpermanentWeakOracle(Time period = 4) : period_(period) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  CrashPlan plan_;
  std::vector<ProcessId> watcher_;
  std::vector<ProcSet> reported_;
  std::vector<bool> retraction_pending_;
};

// Eventually-strong (◇S): before the (per-run, randomized) stabilization
// time reports are noisy — correct processes may be suspected; from
// stabilization on, reports equal the crashed-so-far set.  Used by the
// rotating-coordinator consensus baseline (Table 1's ✸W row; ✸W ≅ ✸S by
// the CT96 gossip conversion).
class EventuallyStrongOracle final : public FdOracle {
 public:
  EventuallyStrongOracle(Time period = 4, Time max_stabilization = 40,
                         double noise = 0.3)
      : period_(period), max_stabilization_(max_stabilization), noise_(noise) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;
  Time stabilization_time() const { return stabilization_; }

 private:
  Time period_;
  Time max_stabilization_;
  double noise_;
  CrashPlan plan_;
  std::optional<Rng> rng_;
  Time stabilization_ = 0;
  std::vector<ProcSet> last_emitted_;
  std::vector<bool> emitted_once_;
};

// Eventually-weak (◇W): weak completeness (one designated watcher per
// faulty process) + EVENTUAL weak accuracy — pre-stabilization reports may
// suspect anyone; post-stabilization only genuinely crashed, watched
// processes are reported.  The weakest class in Table 1's consensus column;
// CT96 convert it to ◇S by gossiping CURRENT suspicions (retractions must
// propagate), which convert_eventually_weak_to_strong realizes.
class EventuallyWeakOracle final : public FdOracle {
 public:
  EventuallyWeakOracle(Time period = 4, Time max_stabilization = 40,
                       double noise = 0.3)
      : period_(period), max_stabilization_(max_stabilization), noise_(noise) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;
  Time stabilization_time() const { return stabilization_; }

 private:
  Time period_;
  Time max_stabilization_;
  double noise_;
  CrashPlan plan_;
  std::optional<Rng> rng_;
  Time stabilization_ = 0;
  std::vector<ProcessId> watcher_;
  std::vector<ProcSet> last_emitted_;
  std::vector<bool> emitted_once_;
};

// Eventually-perfect (◇P): noisy before stabilization, exactly the crashed
// set after — i.e. strong completeness + eventual strong accuracy.
// Identical machinery to EventuallyStrongOracle; the distinct name records
// that the post-stabilization output is the full crashed set (◇P) rather
// than merely containing no false suspicion of some fixed process.
using EventuallyPerfectOracle = EventuallyStrongOracle;

// No failure detector at all (never reports).  The "no FD" cells of Table 1.
class NullOracle final : public FdOracle {
 public:
  void begin_run(const CrashPlan&, std::uint64_t) override {}
  std::optional<Event> report(ProcessId, Time) override { return std::nullopt; }
};

}  // namespace udc
