#include "udc/fd/oracle.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

namespace {

// Picks one correct process (the q* that weak accuracy protects), or
// kInvalidProcess if every process is faulty (weak accuracy is then vacuous).
ProcessId pick_protected(const CrashPlan& plan, Rng& rng) {
  ProcSet correct = plan.faulty_set().complement(plan.n());
  if (correct.empty()) return kInvalidProcess;
  std::uint64_t idx = rng.next_below(static_cast<std::uint64_t>(correct.size()));
  for (ProcessId p : correct) {
    if (idx-- == 0) return p;
  }
  return kInvalidProcess;  // unreachable
}

// Change-driven emission helper shared by the "permanent" oracles.
std::optional<Event> emit_if_changed(ProcSet output, ProcessId p,
                                     std::vector<ProcSet>& last_emitted,
                                     std::vector<bool>& emitted_once) {
  auto idx = static_cast<std::size_t>(p);
  if (emitted_once[idx] && last_emitted[idx] == output) return std::nullopt;
  emitted_once[idx] = true;
  last_emitted[idx] = output;
  return Event::suspect(output);
}

// Draws one new sticky FALSE suspicion for observer p: a correct process
// other than the observer and the protected one.  Restricting to correct
// victims keeps the noise purely an accuracy defect — noise that happened
// to land on (eventually-)faulty processes would smuggle in completeness,
// blurring the detector's lattice class.
void maybe_add_false_suspicion(double rate, Rng& rng, const CrashPlan& plan,
                               ProcessId p, ProcessId protected_process,
                               ProcSet& sticky) {
  if (rate <= 0 || !rng.chance(rate)) return;
  ProcSet candidates = plan.faulty_set().complement(plan.n());
  candidates.erase(p);
  if (protected_process != kInvalidProcess) candidates.erase(protected_process);
  candidates = candidates - sticky;
  if (candidates.empty()) return;
  std::uint64_t idx =
      rng.next_below(static_cast<std::uint64_t>(candidates.size()));
  for (ProcessId q : candidates) {
    if (idx-- == 0) {
      sticky.insert(q);
      return;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- Perfect --

void PerfectOracle::begin_run(const CrashPlan& plan, std::uint64_t) {
  plan_ = plan;
  last_emitted_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  emitted_once_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> PerfectOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  return emit_if_changed(plan_.crashed_by(now), p, last_emitted_,
                         emitted_once_);
}

// ----------------------------------------------------------------- Strong --

void StrongOracle::begin_run(const CrashPlan& plan, std::uint64_t seed) {
  plan_ = plan;
  rng_.emplace(seed ^ 0x5f3759df);
  protected_ = pick_protected(plan_, *rng_);
  false_suspicions_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  last_emitted_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  emitted_once_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> StrongOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  auto& sticky = false_suspicions_[static_cast<std::size_t>(p)];
  maybe_add_false_suspicion(false_rate_, *rng_, plan_, p, protected_,
                            sticky);
  return emit_if_changed(plan_.crashed_by(now) | sticky, p, last_emitted_,
                         emitted_once_);
}

// ------------------------------------------------------------------- Weak --

void WeakOracle::begin_run(const CrashPlan& plan, std::uint64_t seed) {
  plan_ = plan;
  rng_.emplace(seed ^ 0xa02bdbf7);
  protected_ = pick_protected(plan_, *rng_);
  ProcSet correct = plan.faulty_set().complement(plan.n());
  watcher_.assign(static_cast<std::size_t>(plan.n()), kInvalidProcess);
  for (ProcessId q = 0; q < plan.n(); ++q) {
    if (!plan.is_faulty(q) || correct.empty()) continue;
    std::uint64_t idx =
        rng_->next_below(static_cast<std::uint64_t>(correct.size()));
    for (ProcessId w : correct) {
      if (idx-- == 0) {
        watcher_[static_cast<std::size_t>(q)] = w;
        break;
      }
    }
  }
  false_suspicions_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  last_emitted_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  emitted_once_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> WeakOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  ProcSet watched;
  for (ProcessId q : plan_.crashed_by(now)) {
    if (watcher_[static_cast<std::size_t>(q)] == p) watched.insert(q);
  }
  auto& sticky = false_suspicions_[static_cast<std::size_t>(p)];
  maybe_add_false_suspicion(false_rate_, *rng_, plan_, p, protected_,
                            sticky);
  return emit_if_changed(watched | sticky, p, last_emitted_, emitted_once_);
}

// --------------------------------------------------- Impermanent (strong) --

void ImpermanentStrongOracle::begin_run(const CrashPlan& plan, std::uint64_t) {
  plan_ = plan;
  reported_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  retraction_pending_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> ImpermanentStrongOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  auto idx = static_cast<std::size_t>(p);
  ProcSet fresh = plan_.crashed_by(now) - reported_[idx];
  if (!fresh.empty()) {
    reported_[idx] |= fresh;
    // Fresh crashes are reported exactly once; the retraction that follows
    // makes the suspicion impermanent.
    retraction_pending_[idx] = true;
    return Event::suspect(fresh);
  }
  if (retraction_pending_[idx]) {
    retraction_pending_[idx] = false;
    return Event::suspect(ProcSet{});
  }
  return std::nullopt;
}

// ----------------------------------------------------- Impermanent (weak) --

void ImpermanentWeakOracle::begin_run(const CrashPlan& plan,
                                      std::uint64_t seed) {
  plan_ = plan;
  Rng rng(seed ^ 0x2545f491);
  ProcSet correct = plan.faulty_set().complement(plan.n());
  watcher_.assign(static_cast<std::size_t>(plan.n()), kInvalidProcess);
  for (ProcessId q = 0; q < plan.n(); ++q) {
    if (!plan.is_faulty(q) || correct.empty()) continue;
    std::uint64_t idx = rng.next_below(static_cast<std::uint64_t>(correct.size()));
    for (ProcessId w : correct) {
      if (idx-- == 0) {
        watcher_[static_cast<std::size_t>(q)] = w;
        break;
      }
    }
  }
  reported_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  retraction_pending_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> ImpermanentWeakOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  auto idx = static_cast<std::size_t>(p);
  ProcSet fresh;
  for (ProcessId q : plan_.crashed_by(now)) {
    if (watcher_[static_cast<std::size_t>(q)] == p &&
        !reported_[idx].contains(q)) {
      fresh.insert(q);
    }
  }
  if (!fresh.empty()) {
    reported_[idx] |= fresh;
    retraction_pending_[idx] = true;
    return Event::suspect(fresh);
  }
  if (retraction_pending_[idx]) {
    retraction_pending_[idx] = false;
    return Event::suspect(ProcSet{});
  }
  return std::nullopt;
}

// ------------------------------------------------------- Eventually strong --

void EventuallyStrongOracle::begin_run(const CrashPlan& plan,
                                       std::uint64_t seed) {
  plan_ = plan;
  rng_.emplace(seed ^ 0x8cb92ba7);
  stabilization_ =
      max_stabilization_ > 0
          ? static_cast<Time>(rng_->next_below(
                static_cast<std::uint64_t>(max_stabilization_) + 1))
          : 0;
  last_emitted_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  emitted_once_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> EventuallyStrongOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  ProcSet suspicions = plan_.crashed_by(now);
  if (now < stabilization_) {
    for (ProcessId q = 0; q < plan_.n(); ++q) {
      if (q != p && !suspicions.contains(q) && rng_->chance(noise_)) {
        suspicions.insert(q);
      }
    }
  }
  // Pre-stabilization noise changes on its own; post-stabilization this is
  // exactly the change-driven perfect report (which also emits the
  // stabilizing retraction of the last noisy set).
  return emit_if_changed(suspicions, p, last_emitted_, emitted_once_);
}

// -------------------------------------------------------- Eventually weak --

void EventuallyWeakOracle::begin_run(const CrashPlan& plan,
                                     std::uint64_t seed) {
  plan_ = plan;
  rng_.emplace(seed ^ 0x1f83d9ab);
  stabilization_ =
      max_stabilization_ > 0
          ? static_cast<Time>(rng_->next_below(
                static_cast<std::uint64_t>(max_stabilization_) + 1))
          : 0;
  ProcSet correct = plan.faulty_set().complement(plan.n());
  watcher_.assign(static_cast<std::size_t>(plan.n()), kInvalidProcess);
  for (ProcessId q = 0; q < plan.n(); ++q) {
    if (!plan.is_faulty(q) || correct.empty()) continue;
    std::uint64_t idx =
        rng_->next_below(static_cast<std::uint64_t>(correct.size()));
    for (ProcessId w : correct) {
      if (idx-- == 0) {
        watcher_[static_cast<std::size_t>(q)] = w;
        break;
      }
    }
  }
  last_emitted_.assign(static_cast<std::size_t>(plan.n()), ProcSet{});
  emitted_once_.assign(static_cast<std::size_t>(plan.n()), false);
}

std::optional<Event> EventuallyWeakOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  ProcSet suspicions;
  for (ProcessId q : plan_.crashed_by(now)) {
    if (watcher_[static_cast<std::size_t>(q)] == p) suspicions.insert(q);
  }
  if (now < stabilization_) {
    for (ProcessId q = 0; q < plan_.n(); ++q) {
      if (q != p && !suspicions.contains(q) && rng_->chance(noise_)) {
        suspicions.insert(q);
      }
    }
  }
  return emit_if_changed(suspicions, p, last_emitted_, emitted_once_);
}

}  // namespace udc
