#include "udc/fd/convert.h"

#include <vector>

namespace udc {

Run interleave_reports(
    const Run& r,
    const std::function<std::optional<Event>(ProcessId, Time)>& reporter) {
  Run::Builder b(r.n());
  for (Time m = 0; m <= r.horizon(); ++m) {
    // Odd step 2m+1: fresh reports computed at the original point (r, m).
    for (ProcessId p = 0; p < r.n(); ++p) {
      if (b.crashed(p)) continue;
      if (auto e = reporter(p, m)) b.append(p, *e);
    }
    b.end_step();
    if (m == r.horizon()) break;
    // Even step 2m+2: replay the original events entering at m+1.
    for (ProcessId p = 0; p < r.n(); ++p) {
      std::size_t prev = r.history_len(p, m);
      if (r.history_len(p, m + 1) == prev) continue;
      const Event& e = r.history(p)[prev];
      if (!e.is_failure_detector_event()) b.append(p, e);
    }
    b.end_step();
  }
  return std::move(b).build();
}

namespace {

// Shared skeleton: replay the run verbatim except that each FD event is
// replaced by suspect(state[p]) after `absorb` folds the event (or a
// received gossip message) into state[p].
Run replay_accumulating(const Run& r, bool absorb_gossip) {
  std::vector<ProcSet> acc(static_cast<std::size_t>(r.n()));
  Run::Builder b(r.n());
  for (Time m = 1; m <= r.horizon(); ++m) {
    for (ProcessId p = 0; p < r.n(); ++p) {
      std::size_t prev = r.history_len(p, m - 1);
      if (r.history_len(p, m) == prev) continue;
      const Event& e = r.history(p)[prev];
      auto& mine = acc[static_cast<std::size_t>(p)];
      if (e.kind == EventKind::kSuspect) {
        mine |= e.suspects;
        b.append(p, Event::suspect(mine));
        continue;
      }
      if (absorb_gossip && e.kind == EventKind::kRecv &&
          e.msg.kind == MsgKind::kSuspicionGossip) {
        mine |= e.msg.procs;
        // The receive itself stays in the run (non-FD events are preserved);
        // the refreshed report appears at p's next detector event.  To make
        // "eventually permanently" hold even if the original detector goes
        // quiet, we cannot append a second event this step (R2) — instead
        // the gossip contribution is folded into every later report.
      }
      b.append(p, e);
    }
    b.end_step();
  }
  // A final sweep of reports so processes whose own detector never fired
  // after the last gossip still end with the full union (strong
  // completeness is judged on the final report).
  for (ProcessId p = 0; p < r.n(); ++p) {
    if (b.crashed(p)) continue;
    b.append(p, Event::suspect(acc[static_cast<std::size_t>(p)]));
  }
  b.end_step();
  return std::move(b).build();
}

}  // namespace

Run convert_impermanent_to_permanent(const Run& r) {
  return replay_accumulating(r, /*absorb_gossip=*/false);
}

System convert_impermanent_to_permanent(const System& sys) {
  std::vector<Run> out;
  out.reserve(sys.size());
  for (const Run& r : sys.runs()) {
    out.push_back(convert_impermanent_to_permanent(r));
  }
  return System(std::move(out));
}

Run convert_weak_to_strong_via_gossip(const Run& r) {
  return replay_accumulating(r, /*absorb_gossip=*/true);
}

System convert_weak_to_strong_via_gossip(const System& sys) {
  std::vector<Run> out;
  out.reserve(sys.size());
  for (const Run& r : sys.runs()) {
    out.push_back(convert_weak_to_strong_via_gossip(r));
  }
  return System(std::move(out));
}

Run convert_eventually_weak_to_strong(const Run& r, Time lease) {
  const int n = r.n();
  // latest[p][src]: the most recent suspicion set process p holds from
  // source src, with the time it arrived (own reports, src == p, never
  // expire: they ARE the current local detector output).
  struct Contribution {
    ProcSet set;
    Time at = -1;  // -1 = never heard from this source
  };
  std::vector<std::vector<Contribution>> latest(
      static_cast<std::size_t>(n),
      std::vector<Contribution>(static_cast<std::size_t>(n)));
  auto union_for = [&](ProcessId p, Time now) {
    ProcSet u = latest[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(p)]
                          .set;
    for (ProcessId src = 0; src < n; ++src) {
      if (src == p) continue;
      const Contribution& c =
          latest[static_cast<std::size_t>(p)][static_cast<std::size_t>(src)];
      if (c.at >= 0 && now - c.at <= lease) u |= c.set;
    }
    return u;
  };
  Run::Builder b(n);
  for (Time m = 1; m <= r.horizon(); ++m) {
    for (ProcessId p = 0; p < n; ++p) {
      std::size_t prev = r.history_len(p, m - 1);
      if (r.history_len(p, m) == prev) continue;
      const Event& e = r.history(p)[prev];
      auto idx = static_cast<std::size_t>(p);
      if (e.kind == EventKind::kSuspect) {
        latest[idx][idx] = {e.suspects, m};
        b.append(p, Event::suspect(union_for(p, m)));
        continue;
      }
      if (e.kind == EventKind::kRecv &&
          e.msg.kind == MsgKind::kSuspicionGossip) {
        latest[idx][static_cast<std::size_t>(e.peer)] = {e.msg.procs, m};
        // The receive stays (non-FD events are preserved); the refreshed
        // union lands at the final sweep and at p's next own report.
      }
      b.append(p, e);
    }
    b.end_step();
  }
  for (ProcessId p = 0; p < n; ++p) {
    if (b.crashed(p)) continue;
    b.append(p, Event::suspect(union_for(p, r.horizon() + 1)));
  }
  b.end_step();
  return std::move(b).build();
}

System convert_eventually_weak_to_strong(const System& sys, Time lease) {
  std::vector<Run> out;
  out.reserve(sys.size());
  for (const Run& r : sys.runs()) {
    out.push_back(convert_eventually_weak_to_strong(r, lease));
  }
  return System(std::move(out));
}

}  // namespace udc
