#include "udc/fd/lattice.h"

namespace udc {

const char* ct_class_name(CtLatticeClass c) {
  switch (c) {
    case CtLatticeClass::kP: return "P (Perfect)";
    case CtLatticeClass::kS: return "S (Strong)";
    case CtLatticeClass::kQ: return "Q";
    case CtLatticeClass::kW: return "W (Weak)";
    case CtLatticeClass::kDiamondP: return "<>P";
    case CtLatticeClass::kDiamondS: return "<>S";
    case CtLatticeClass::kDiamondQ: return "<>Q";
    case CtLatticeClass::kDiamondW: return "<>W";
    case CtLatticeClass::kNone: return "none";
  }
  return "?";
}

namespace {

CtLatticeClass combine(bool strong_comp, bool weak_comp, bool strong_acc,
                       bool weak_acc, bool ev_strong_acc, bool ev_weak_acc) {
  if (strong_comp) {
    if (strong_acc) return CtLatticeClass::kP;
    if (weak_acc) return CtLatticeClass::kS;
    if (ev_strong_acc) return CtLatticeClass::kDiamondP;
    if (ev_weak_acc) return CtLatticeClass::kDiamondS;
    return CtLatticeClass::kNone;
  }
  if (weak_comp) {
    if (strong_acc) return CtLatticeClass::kQ;
    if (weak_acc) return CtLatticeClass::kW;
    if (ev_strong_acc) return CtLatticeClass::kDiamondQ;
    if (ev_weak_acc) return CtLatticeClass::kDiamondW;
  }
  return CtLatticeClass::kNone;
}

}  // namespace

CtLatticeClass classify_ct(const Run& r, Time grace) {
  FdPropertyReport perpetual = check_fd_properties(r, grace);
  EventualAccuracyReport eventual = check_eventual_accuracy(r);
  return combine(perpetual.strong_completeness, perpetual.weak_completeness,
                 perpetual.strong_accuracy, perpetual.weak_accuracy,
                 eventual.eventually_strong(), eventual.eventually_weak());
}

CtLatticeClass classify_ct(const System& sys, Time grace) {
  FdPropertyReport perpetual = check_fd_properties(sys, grace);
  EventualAccuracyReport eventual = check_eventual_accuracy(sys);
  return combine(perpetual.strong_completeness, perpetual.weak_completeness,
                 perpetual.strong_accuracy, perpetual.weak_accuracy,
                 eventual.eventually_strong(), eventual.eventually_weak());
}

bool ct_at_least(CtLatticeClass have, CtLatticeClass want) {
  auto rank_completeness = [](CtLatticeClass c) {
    switch (c) {
      case CtLatticeClass::kP:
      case CtLatticeClass::kS:
      case CtLatticeClass::kDiamondP:
      case CtLatticeClass::kDiamondS:
        return 2;
      case CtLatticeClass::kQ:
      case CtLatticeClass::kW:
      case CtLatticeClass::kDiamondQ:
      case CtLatticeClass::kDiamondW:
        return 1;
      case CtLatticeClass::kNone:
        return 0;
    }
    return 0;
  };
  // Accuracy order: strong(3) > weak(2) > ev-strong... CT96 treat weak and
  // eventual-strong as incomparable; rank them on separate axes.
  auto acc_perpetual = [](CtLatticeClass c) {
    switch (c) {
      case CtLatticeClass::kP:
      case CtLatticeClass::kQ:
        return 2;  // strong accuracy
      case CtLatticeClass::kS:
      case CtLatticeClass::kW:
        return 1;  // weak accuracy
      default:
        return 0;  // only eventual accuracy
    }
  };
  auto acc_eventual = [](CtLatticeClass c) {
    switch (c) {
      case CtLatticeClass::kP:
      case CtLatticeClass::kQ:
      case CtLatticeClass::kDiamondP:
      case CtLatticeClass::kDiamondQ:
        return 2;  // (eventually-)strong accuracy
      case CtLatticeClass::kNone:
        return 0;
      default:
        return 1;  // (eventually-)weak accuracy
    }
  };
  if (want == CtLatticeClass::kNone) return true;
  if (have == CtLatticeClass::kNone) return false;
  return rank_completeness(have) >= rank_completeness(want) &&
         acc_perpetual(have) >= acc_perpetual(want) &&
         acc_eventual(have) >= acc_eventual(want);
}

}  // namespace udc
