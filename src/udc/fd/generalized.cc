#include "udc/fd/generalized.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "udc/common/check.h"

namespace udc {

bool is_t_useful_report(ProcSet s, int k, ProcSet faulty, int n, int t) {
  if (!faulty.subset_of(s)) return false;                 // (a)
  if (n - s.size() <= std::min(t, n - 1) - k) return false;  // (b)
  return k <= s.size();                                   // (c)
}

void GenFdReport::merge(const GenFdReport& other) {
  generalized_strong_accuracy &= other.generalized_strong_accuracy;
  generalized_impermanent_strong_completeness &=
      other.generalized_impermanent_strong_completeness;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

GenFdReport check_t_useful(const Run& r, int t, Time grace) {
  GenFdReport rep;
  const int n = r.n();
  const ProcSet faulty = r.faulty_set();

  // Generalized strong accuracy: at each report (S,k), at least k processes
  // of S have crash events in their histories already.
  for (ProcessId p = 0; p < n; ++p) {
    const History& h = r.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].kind != EventKind::kSuspectGen) continue;
      Time m = r.event_time(p, i);
      int crashed_in_s = 0;
      for (ProcessId q : h[i].suspects) {
        if (r.crashed_by(q, m)) ++crashed_in_s;
      }
      if (crashed_in_s < h[i].k) {
        rep.generalized_strong_accuracy = false;
        std::ostringstream out;
        out << "generalized strong accuracy: p" << p << " reported ("
            << h[i].suspects.to_string() << ", " << h[i].k << ") at time " << m
            << " with only " << crashed_in_s << " crashed in S";
        rep.violations.push_back(out.str());
      }
    }
  }

  // Generalized impermanent strong completeness: every correct process
  // eventually holds a report that is t-useful for this run.  Grace: skip
  // runs whose last crash lands within `grace` of the horizon.
  Time last_crash = 0;
  for (ProcessId q : faulty) last_crash = std::max(last_crash, *r.crash_time(q));
  if (last_crash <= r.horizon() - grace) {
    for (ProcessId p : r.correct_set()) {
      bool found = false;
      for (const auto& g : r.gen_reports_up_to(p, r.horizon())) {
        if (is_t_useful_report(g.s, g.k, faulty, n, t)) {
          found = true;
          break;
        }
      }
      if (!found) {
        rep.generalized_impermanent_strong_completeness = false;
        std::ostringstream out;
        out << "generalized completeness: correct p" << p
            << " never holds a " << t << "-useful report (F(r)="
            << faulty.to_string() << ")";
        rep.violations.push_back(out.str());
      }
    }
  }
  return rep;
}

GenFdReport check_t_useful(const System& sys, int t, Time grace) {
  GenFdReport rep;
  for (const Run& r : sys.runs()) rep.merge(check_t_useful(r, t, grace));
  return rep;
}

// ------------------------------------------------------------------ oracles

void TUsefulOracle::begin_run(const CrashPlan& plan, std::uint64_t seed) {
  plan_ = plan;
  const int n = plan.n();
  s_ = plan.faulty_set();
  // Padding with non-faulty processes keeps reports "generalized" (S strictly
  // larger than the truth) while preserving eventual usefulness: we need
  // |S| - n + min(t, n-1) < |F(r)|, i.e. padding < n - min(t, n-1).
  int max_pad = n - std::min(t_, n - 1) - 1;
  int pad = std::min(pad_, max_pad);
  Rng rng(seed ^ 0x7f4a7c15);
  while (pad > 0 && s_.size() < n) {
    ProcSet candidates = s_.complement(n);
    std::uint64_t idx =
        rng.next_below(static_cast<std::uint64_t>(candidates.size()));
    for (ProcessId q : candidates) {
      if (idx-- == 0) {
        s_.insert(q);
        break;
      }
    }
    --pad;
  }
  last_k_.assign(static_cast<std::size_t>(n), -1);
}

std::optional<Event> TUsefulOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  // Change-driven: S is fixed per run, so re-emit only when k grows.
  int k = (plan_.crashed_by(now) & s_).size();
  int& last = last_k_[static_cast<std::size_t>(p)];
  if (k == last) return std::nullopt;
  last = k;
  return Event::suspect_gen(s_, k);
}

void TrivialGeneralizedOracle::begin_run(const CrashPlan& plan,
                                         std::uint64_t) {
  n_ = plan.n();
  subsets_.clear();
  // Enumerate all subsets of {0..n-1} of size exactly t, in mask order.
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n_); ++mask) {
    if (__builtin_popcountll(mask) == t_) subsets_.push_back(ProcSet(mask));
  }
  UDC_CHECK(!subsets_.empty(), "no size-t subsets (t > n?)");
  next_subset_.assign(static_cast<std::size_t>(n_), 0);
}

std::optional<Event> TrivialGeneralizedOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0 || now % period_ != 0) return std::nullopt;
  auto& cursor = next_subset_[static_cast<std::size_t>(p)];
  if (cursor >= subsets_.size() * static_cast<std::size_t>(cycles_)) {
    return std::nullopt;  // every report has been held `cycles` times
  }
  ProcSet s = subsets_[cursor % subsets_.size()];
  ++cursor;
  return Event::suspect_gen(s, 0);
}

// -------------------------------------------------------------- conversions

namespace {

// Replays `r` step by step, mapping each failure-detector event through
// `map_fd` (return nullopt to drop it) and copying everything else.
Run replay_with_fd_map(
    const Run& r,
    const std::function<std::optional<Event>(ProcessId, const Event&)>&
        map_fd) {
  Run::Builder b(r.n());
  for (Time m = 1; m <= r.horizon(); ++m) {
    for (ProcessId p = 0; p < r.n(); ++p) {
      std::size_t prev = r.history_len(p, m - 1);
      if (r.history_len(p, m) == prev) continue;
      const Event& e = r.history(p)[prev];
      if (e.is_failure_detector_event()) {
        if (auto mapped = map_fd(p, e)) b.append(p, *mapped);
      } else {
        b.append(p, e);
      }
    }
    b.end_step();
  }
  return std::move(b).build();
}

}  // namespace

Run convert_gen_to_perfect(const Run& r) {
  std::vector<ProcSet> known(static_cast<std::size_t>(r.n()));
  return replay_with_fd_map(r, [&known](ProcessId p, const Event& e) {
    if (e.kind == EventKind::kSuspectGen && e.k == e.suspects.size()) {
      known[static_cast<std::size_t>(p)] |= e.suspects;
    }
    return std::optional<Event>(
        Event::suspect(known[static_cast<std::size_t>(p)]));
  });
}

Run convert_perfect_to_gen(const Run& r) {
  std::vector<ProcSet> known(static_cast<std::size_t>(r.n()));
  return replay_with_fd_map(r, [&known](ProcessId p, const Event& e) {
    if (e.kind == EventKind::kSuspect) {
      known[static_cast<std::size_t>(p)] |= e.suspects;
    }
    ProcSet s = known[static_cast<std::size_t>(p)];
    return std::optional<Event>(Event::suspect_gen(s, s.size()));
  });
}

}  // namespace udc
