// The Aguilera-Toueg-Deianov detector class (paper §5, [ATD99]).
//
// Responding to the conference version of this paper, ATD99 characterized
// the WEAKEST failure detector for uniform reliable broadcast (≅ UDC):
// strong completeness plus an accuracy strictly weaker than weak accuracy —
//
//   ATD accuracy: at ALL times, SOME correct process is not suspected by
//   anyone — but it may be a DIFFERENT correct process at different times.
//
// Weak accuracy fixes one forever-unsuspected q*; ATD accuracy only needs a
// rotating witness.  This module provides:
//   - check_atd_accuracy: the per-time property on runs/systems;
//   - AtdOracle: strong completeness + ATD accuracy, deliberately violating
//     weak accuracy (the spared correct process rotates round-robin), the
//     separating example between the two classes;
// and coord/udc_atd.h provides the protocol that attains UDC with it.
#pragma once

#include <string>
#include <vector>

#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"

namespace udc {

struct AtdAccuracyReport {
  bool holds = true;
  std::vector<std::string> violations;
};

// For every time m with a correct process alive: some correct q is in no
// live process's Suspects_p(r, m).
AtdAccuracyReport check_atd_accuracy(const Run& r);
AtdAccuracyReport check_atd_accuracy(const System& sys);

// Strong completeness (crashed-so-far always included) + ATD accuracy, with
// weak accuracy deliberately broken: each report round spares a rotating
// WINDOW of two adjacent correct processes and suspects the rest.  All
// observers rotate in phase off the global clock, and adjacent rounds'
// windows overlap in one process — so even when one observer's report is a
// round late (its slot was taken by an init or a delivery), the overlap
// process stays unsuspected by everyone and ATD accuracy holds at every
// instant.  With 3+ correct processes the rotation still suspects each of
// them eventually, breaking weak accuracy.
class AtdOracle final : public FdOracle {
 public:
  explicit AtdOracle(Time period = 4) : period_(period) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  Time period_;
  CrashPlan plan_;
  std::vector<std::int64_t> last_round_;  // catch-up for missed slots
};

}  // namespace udc
