#include "udc/fd/atd.h"

#include <sstream>

namespace udc {

AtdAccuracyReport check_atd_accuracy(const Run& r) {
  AtdAccuracyReport rep;
  const int n = r.n();
  for (Time m = 0; m <= r.horizon(); ++m) {
    // Correct processes at this run (the paper's F(r) is per-run, and ATD
    // accuracy — like weak accuracy — is vacuous when everyone fails).
    ProcSet correct = r.correct_set();
    if (correct.empty()) continue;
    ProcSet suspected_now;
    for (ProcessId p = 0; p < n; ++p) {
      if (r.crashed_by(p, m)) continue;  // frozen post-crash reports
      suspected_now |= r.suspects_at(p, m);
    }
    if ((correct - suspected_now).empty()) {
      rep.holds = false;
      std::ostringstream out;
      out << "ATD accuracy: at time " << m
          << " every correct process is suspected by someone";
      rep.violations.push_back(out.str());
      return rep;  // one witness suffices
    }
  }
  return rep;
}

AtdAccuracyReport check_atd_accuracy(const System& sys) {
  AtdAccuracyReport rep;
  for (const Run& r : sys.runs()) {
    AtdAccuracyReport one = check_atd_accuracy(r);
    rep.holds &= one.holds;
    rep.violations.insert(rep.violations.end(), one.violations.begin(),
                          one.violations.end());
  }
  return rep;
}

void AtdOracle::begin_run(const CrashPlan& plan, std::uint64_t) {
  plan_ = plan;
  last_round_.assign(static_cast<std::size_t>(plan.n()), -1);
}

std::optional<Event> AtdOracle::report(ProcessId p, Time now) {
  if (period_ == 0 || now == 0) return std::nullopt;
  std::int64_t round = now / period_;
  if (round == 0) return std::nullopt;
  auto& last = last_round_[static_cast<std::size_t>(p)];
  if (round == last) return std::nullopt;  // change-driven per round, with
  last = round;                            // catch-up after missed slots
  ProcSet correct = plan_.faulty_set().complement(plan_.n());
  ProcSet suspicions = plan_.crashed_by(now);  // strong completeness
  if (!correct.empty()) {
    // Spared window: the round-th and (round+1)-th correct process (cyclic).
    std::vector<ProcessId> ordered;
    for (ProcessId q : correct) ordered.push_back(q);
    std::size_t c = ordered.size();
    ProcessId spare_a = ordered[static_cast<std::size_t>(round) % c];
    ProcessId spare_b = ordered[(static_cast<std::size_t>(round) + 1) % c];
    for (ProcessId q : correct) {
      if (q != spare_a && q != spare_b && q != p) suspicions.insert(q);
    }
  }
  return Event::suspect(suspicions);
}

}  // namespace udc
