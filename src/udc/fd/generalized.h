// Generalized failure detectors (§4).
//
// A generalized report suspect_p(S, k) says "at least k of the processes in
// S are faulty" without naming which k.  Given a failure bound t, a report
// is *t-useful for run r* (paper §4) iff
//     (a) F(r) ⊆ S,
//     (b) n - |S| > min(t, n-1) - k,    and
//     (c) k ≤ |S|.
// A detector is t-useful iff it satisfies Generalized Strong Accuracy (each
// report (S,k) has k already-crashed processes inside S) and Generalized
// Impermanent Strong Completeness (every correct process eventually holds a
// t-useful report).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "udc/event/run.h"
#include "udc/event/system.h"
#include "udc/fd/oracle.h"

namespace udc {

// (a)-(c) above, for a report already known to be generalized-accurate.
bool is_t_useful_report(ProcSet s, int k, ProcSet faulty, int n, int t);

struct GenFdReport {
  bool generalized_strong_accuracy = true;
  bool generalized_impermanent_strong_completeness = true;
  std::vector<std::string> violations;

  bool t_useful() const {
    return generalized_strong_accuracy &&
           generalized_impermanent_strong_completeness;
  }
  void merge(const GenFdReport& other);
};

// Checks one run against the two t-useful clauses.  Completeness binds only
// for runs whose last crash is at or before horizon - grace.
GenFdReport check_t_useful(const Run& r, int t, Time grace = 0);
GenFdReport check_t_useful(const System& sys, int t, Time grace = 0);

// ---------------------------------------------------------------------------
// Oracles.
// ---------------------------------------------------------------------------

// Emits generalized reports (S, k) where S is F(r) padded with `pad` extra
// (possibly correct) processes, and k = |crashed-so-far ∩ S|.  Reports are
// accurate by construction and become t-useful once enough of F(r) has
// crashed; the oracle keeps reporting every `period` ticks so every correct
// process eventually holds a t-useful report (provided the padded S keeps
// n - |S| > min(t, n-1) - k reachable, which the oracle enforces by capping
// the padding).
class TUsefulOracle final : public FdOracle {
 public:
  explicit TUsefulOracle(int t, Time period = 4, int pad = 1)
      : t_(t), period_(period), pad_(pad) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  int t_;
  Time period_;
  int pad_;
  CrashPlan plan_;
  ProcSet s_;  // fixed per-run suspicion set, F(r) plus padding
  std::vector<int> last_k_;  // change-driven: last k emitted per observer
};

// The trivial construction for t < n/2 (paper §4): cycle through all subsets
// S of size t, reporting (S, 0).  Every report is vacuously accurate, and
// whichever S contains F(r) yields a t-useful report.  Demonstrates
// Corollary 4.2 (Gopal-Toueg): no real failure information is needed when
// t < n/2.  The paper's construction cycles forever; ours stops after
// `cycles` full passes — by then every observer has held every report, and
// consumers (UdcGeneralizedProcess) remember reports, so the paper-level
// behaviour is preserved without permanently taxing the event budget.
class TrivialGeneralizedOracle final : public FdOracle {
 public:
  explicit TrivialGeneralizedOracle(int t, Time period = 2, int cycles = 3)
      : t_(t), period_(period), cycles_(cycles) {}
  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  int t_;
  Time period_;
  int cycles_;
  int n_ = 0;
  std::vector<ProcSet> subsets_;          // all |S| = t subsets, fixed order
  std::vector<std::size_t> next_subset_;  // per-process cursor
};

// ---------------------------------------------------------------------------
// §4 conversions between generalized and perfect detectors.
// ---------------------------------------------------------------------------

// n-useful / (n-1)-useful reports force |S| = k, i.e. every process in S has
// crashed; replacing each generalized report by the running union of such
// fully-determined sets yields a standard perfect detector (paper §4).
Run convert_gen_to_perfect(const Run& r);

// The reverse direction: each standard report S becomes (S', |S'|) where S'
// is the running union of reported sets; the result is n-useful.
Run convert_perfect_to_gen(const Run& r);

}  // namespace udc
