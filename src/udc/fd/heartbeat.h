// Heartbeat failure detection: the §2.2 oracle implemented as a *program*.
//
// The oracles in fd/oracle.h read the ground-truth crash schedule; a deployed
// detector has no such tape.  Following the standard construction (Chandra-
// Toueg §7, and the diagnosis-model line of work), each process periodically
// broadcasts "I am alive"; an observer suspects a peer whose heartbeat has
// been silent longer than a per-peer timeout.  Asynchrony makes false
// suspicion unavoidable (a slow link looks exactly like a crash), so the
// timeout ADAPTS: when a heartbeat arrives from a currently-suspected peer —
// proof the suspicion was false — the observer restores trust and backs the
// peer's timeout off multiplicatively.  After finitely many false suspicions
// the timeout exceeds any actual delay bound the network settles into, which
// is precisely the ◇-class guarantee: eventual strong accuracy, while
// genuinely crashed peers stay silent past every timeout (strong
// completeness).  check_eventual_accuracy re-verifies this on every lifted
// live run — the detector is a program here, never trusted for checking.
//
// HeartbeatDetector is a pure state machine over an abstract clock: feed it
// heartbeat arrivals and poll it for change-driven reports (same semantics as
// the oracles: a report REPLACES Suspects_p, and one is emitted only when the
// set changes).  The live runtime (rt/runtime.h) wires it to real threads and
// a real transport; unit tests drive it directly.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "udc/common/check.h"
#include "udc/common/proc_set.h"
#include "udc/common/types.h"

namespace udc {

struct HeartbeatOptions {
  // Ticks between this process's own heartbeat broadcasts (used by the
  // runtime wiring; the detector itself only consumes arrivals).
  Time interval = 24;
  // Silence threshold before the first suspicion of a peer.  Must comfortably
  // exceed `interval` or every peer is suspected immediately.
  Time initial_timeout = 120;
  // Multiplier applied to a peer's timeout after a suspicion of it proves
  // false (its heartbeat arrives late).  Trust-restore + backoff is what
  // yields eventual accuracy under finite perturbations.
  double timeout_backoff = 2.0;
  // Cap on the adaptive timeout (0 = uncapped).
  Time max_timeout = 0;
};

class HeartbeatDetector {
 public:
  HeartbeatDetector(int n, ProcessId self, HeartbeatOptions opts,
                    Time start_time = 0)
      : n_(n), self_(self), opts_(opts) {
    UDC_CHECK(n >= 1 && n <= kMaxProcesses, "detector n out of range");
    UDC_CHECK(self >= 0 && self < n, "detector self out of range");
    UDC_CHECK(opts.interval >= 1 && opts.initial_timeout > opts.interval,
              "heartbeat timeout must exceed the heartbeat interval");
    UDC_CHECK(opts.timeout_backoff >= 1.0, "timeout backoff must be >= 1");
    // Every peer starts trusted, as if it heartbeat at start_time.
    last_heard_.assign(static_cast<std::size_t>(n), start_time);
    timeout_.assign(static_cast<std::size_t>(n), opts.initial_timeout);
  }

  // A heartbeat from `peer` arrived at `now`.  If `peer` was suspected, the
  // suspicion was false: trust is restored and the peer's timeout backs off.
  void observe_heartbeat(ProcessId peer, Time now) {
    UDC_CHECK(peer >= 0 && peer < n_ && peer != self_,
              "heartbeat from out-of-range or self peer");
    auto i = static_cast<std::size_t>(peer);
    if (now > last_heard_[i]) last_heard_[i] = now;
    if (suspected_.contains(peer)) {
      suspected_.erase(peer);
      ++false_suspicions_;
      ++trust_restores_;
      double widened =
          static_cast<double>(timeout_[i]) * opts_.timeout_backoff;
      Time t = static_cast<Time>(widened);
      if (opts_.max_timeout > 0 && t > opts_.max_timeout) {
        t = opts_.max_timeout;
      }
      timeout_[i] = t;
      changed_ = true;
    }
  }

  // Advances the detector to `now`, suspecting every peer silent past its
  // timeout.  Change-driven: returns the new suspect set iff it differs from
  // the last one returned (first poll always reports, establishing the
  // initial — possibly empty — Suspects_p).
  std::optional<ProcSet> poll(Time now) {
    for (ProcessId q = 0; q < n_; ++q) {
      if (q == self_ || suspected_.contains(q)) continue;
      auto i = static_cast<std::size_t>(q);
      if (now - last_heard_[i] > timeout_[i]) {
        suspected_.insert(q);
        ++suspicions_raised_;
        changed_ = true;
      }
    }
    if (!changed_ && reported_once_) return std::nullopt;
    changed_ = false;
    reported_once_ = true;
    return suspected_;
  }

  ProcSet suspects() const { return suspected_; }
  Time timeout_of(ProcessId peer) const {
    return timeout_[static_cast<std::size_t>(peer)];
  }

  // Counters, exported into coord/metrics RuntimeCounters by the runtime.
  std::size_t suspicions_raised() const { return suspicions_raised_; }
  std::size_t false_suspicions() const { return false_suspicions_; }
  std::size_t trust_restores() const { return trust_restores_; }

 private:
  int n_;
  ProcessId self_;
  HeartbeatOptions opts_;
  std::vector<Time> last_heard_;  // per peer
  std::vector<Time> timeout_;    // per peer, adaptive
  ProcSet suspected_;
  bool changed_ = false;
  bool reported_once_ = false;
  std::size_t suspicions_raised_ = 0;
  std::size_t false_suspicions_ = 0;
  std::size_t trust_restores_ = 0;
};

}  // namespace udc
