// Run- and system-level verification of failure-detector properties (§2.2).
//
// These checkers evaluate the paper's six properties against the suspect
// events recorded in runs.  "Eventually permanently" is checked on the
// finite horizon as "in Suspects_p(r, m) for every m from some point to the
// horizon" — equivalently, membership in the *final* report — and a `grace`
// window excuses crashes too close to the horizon for any detector to have
// reported them (the documented finite surrogate; see DESIGN.md §2).
//
// Oracles construct; checkers verify.  Every experiment re-checks the
// detector class it claims to use.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

struct FdPropertyReport {
  bool strong_accuracy = true;
  bool weak_accuracy = true;
  bool strong_completeness = true;
  bool weak_completeness = true;
  bool impermanent_strong_completeness = true;
  bool impermanent_weak_completeness = true;
  std::vector<std::string> violations;  // human-readable witnesses

  bool perfect() const { return strong_accuracy && strong_completeness; }
  bool strong() const { return weak_accuracy && strong_completeness; }
  bool weak() const { return weak_accuracy && weak_completeness; }
  bool impermanent_strong() const {
    return weak_accuracy && impermanent_strong_completeness;
  }
  bool impermanent_weak() const {
    return weak_accuracy && impermanent_weak_completeness;
  }

  void merge(const FdPropertyReport& other);
  std::string summary() const;
};

// Checks one run.  Completeness clauses only bind for processes that crash
// at or before horizon - grace.
FdPropertyReport check_fd_properties(const Run& r, Time grace = 0);

// A system satisfies a property iff every run does (§2.2).
FdPropertyReport check_fd_properties(const System& sys, Time grace = 0);

// Eventual accuracy (the ◇-classes of CT96): does there exist a
// stabilization time m0 from which accuracy holds through the horizon?
//   eventual strong accuracy: from m0 on, every suspicion names a crashed
//                             process;
//   eventual weak accuracy:   from m0 on, some correct process is never
//                             suspected by anyone.
// The finite surrogate reports the least such m0 (nullopt if none exists
// within the horizon).
struct EventualAccuracyReport {
  std::optional<Time> strong_from;
  std::optional<Time> weak_from;
  bool eventually_strong() const { return strong_from.has_value(); }
  bool eventually_weak() const { return weak_from.has_value(); }
};

EventualAccuracyReport check_eventual_accuracy(const Run& r);
// System-level: every run must stabilize; reports the max stabilization
// time across runs (nullopt if any run never does).
EventualAccuracyReport check_eventual_accuracy(const System& sys);

// The strongest Chandra-Toueg class the report certifies, for display.
enum class FdClass {
  kPerfect,
  kStrong,
  kWeak,
  kImpermanentStrong,
  kImpermanentWeak,
  kNone,
};
FdClass strongest_class(const FdPropertyReport& report);
const char* fd_class_name(FdClass c);

}  // namespace udc
