#include "udc/fd/properties.h"

#include <algorithm>
#include <sstream>

namespace udc {

void FdPropertyReport::merge(const FdPropertyReport& other) {
  strong_accuracy &= other.strong_accuracy;
  weak_accuracy &= other.weak_accuracy;
  strong_completeness &= other.strong_completeness;
  weak_completeness &= other.weak_completeness;
  impermanent_strong_completeness &= other.impermanent_strong_completeness;
  impermanent_weak_completeness &= other.impermanent_weak_completeness;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

std::string FdPropertyReport::summary() const {
  std::ostringstream out;
  auto flag = [&out](const char* name, bool v) {
    out << name << '=' << (v ? 'Y' : 'N') << ' ';
  };
  flag("strong-acc", strong_accuracy);
  flag("weak-acc", weak_accuracy);
  flag("strong-comp", strong_completeness);
  flag("weak-comp", weak_completeness);
  flag("imp-strong-comp", impermanent_strong_completeness);
  flag("imp-weak-comp", impermanent_weak_completeness);
  return out.str();
}

FdPropertyReport check_fd_properties(const Run& r, Time grace) {
  FdPropertyReport rep;
  const int n = r.n();
  const Time T = r.horizon();
  const ProcSet faulty = r.faulty_set();
  const ProcSet correct = r.correct_set();

  // --- accuracy -----------------------------------------------------------
  // Strong accuracy: every suspicion names an already-crashed process.
  // Suspicions only persist between reports and crashes only accumulate, so
  // checking at each report event suffices.
  ProcSet ever_suspected;
  for (ProcessId p = 0; p < n; ++p) {
    const History& h = r.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].kind != EventKind::kSuspect) continue;
      Time m = r.event_time(p, i);
      ever_suspected |= h[i].suspects;
      for (ProcessId q : h[i].suspects) {
        if (!r.crashed_by(q, m)) {
          rep.strong_accuracy = false;
          std::ostringstream out;
          out << "strong accuracy: p" << p << " suspects live p" << q
              << " at time " << m;
          rep.violations.push_back(out.str());
        }
      }
    }
  }
  // Weak accuracy: if any process is correct, some correct process is never
  // suspected by anyone.
  if (!correct.empty() && (correct - ever_suspected).empty()) {
    rep.weak_accuracy = false;
    rep.violations.push_back(
        "weak accuracy: every correct process was suspected at some point");
  }

  // --- completeness -------------------------------------------------------
  // Only crashes with enough slack before the horizon bind.
  ProcSet binding_faulty;
  for (ProcessId q : faulty) {
    if (*r.crash_time(q) <= T - grace) binding_faulty.insert(q);
  }

  for (ProcessId q : binding_faulty) {
    bool some_correct_final = false;
    bool some_correct_ever = false;
    for (ProcessId p : correct) {
      // Final report = Suspects_p(r, T); membership there means "suspected
      // from some time through the horizon".
      bool final_has = r.suspects_at(p, T).contains(q);
      bool ever_has = r.has_event(p, T, [q](const Event& e) {
        return e.kind == EventKind::kSuspect && e.suspects.contains(q);
      });
      some_correct_final |= final_has;
      some_correct_ever |= ever_has;
      if (!final_has) {
        rep.strong_completeness = false;
        std::ostringstream out;
        out << "strong completeness: correct p" << p
            << " does not permanently suspect faulty p" << q;
        rep.violations.push_back(out.str());
      }
      if (!ever_has) {
        rep.impermanent_strong_completeness = false;
        std::ostringstream out;
        out << "impermanent strong completeness: correct p" << p
            << " never suspects faulty p" << q;
        rep.violations.push_back(out.str());
      }
    }
    if (!correct.empty()) {
      if (!some_correct_final) {
        rep.weak_completeness = false;
        std::ostringstream out;
        out << "weak completeness: no correct process permanently suspects p"
            << q;
        rep.violations.push_back(out.str());
      }
      if (!some_correct_ever) {
        rep.impermanent_weak_completeness = false;
        std::ostringstream out;
        out << "impermanent weak completeness: no correct process ever "
               "suspects p"
            << q;
        rep.violations.push_back(out.str());
      }
    }
  }
  return rep;
}

FdPropertyReport check_fd_properties(const System& sys, Time grace) {
  FdPropertyReport rep;
  for (const Run& r : sys.runs()) {
    rep.merge(check_fd_properties(r, grace));
  }
  return rep;
}

EventualAccuracyReport check_eventual_accuracy(const Run& r) {
  EventualAccuracyReport rep;
  const int n = r.n();
  const Time T = r.horizon();

  // Least m0 with all IN-FORCE suspicion sets accurate from m0 through the
  // horizon.  A report stays current until superseded, so the scan runs
  // over Suspects_p(r, m) at every time, not just over report events: a
  // pre-stabilization noisy report keeps the detector inaccurate until the
  // correcting report lands.  Following CT96, the eventual (◇) accuracy
  // classes constrain LIVE observers only — a crashed process's frozen last
  // report is dead state, not an ongoing suspicion.
  std::optional<Time> latest_bad;
  for (ProcessId p = 0; p < n; ++p) {
    for (Time m = T; m >= 0; --m) {
      if (r.crashed_by(p, m)) continue;  // frozen post-crash state
      bool bad = false;
      for (ProcessId q : r.suspects_at(p, m)) {
        if (!r.crashed_by(q, m)) bad = true;
      }
      if (bad) {
        if (!latest_bad || m > *latest_bad) latest_bad = m;
        break;  // earlier times cannot raise this process's latest-bad
      }
    }
  }
  Time candidate = latest_bad ? *latest_bad + 1 : 0;
  if (candidate <= T) rep.strong_from = candidate;

  // Eventual weak accuracy: some correct q unsuspected from some m0 on.
  // For each correct q, its last suspicion time determines its candidate;
  // take the min over correct processes.
  if (!r.correct_set().empty()) {
    std::optional<Time> best;
    for (ProcessId q : r.correct_set()) {
      std::optional<Time> last_suspected;
      for (ProcessId p = 0; p < n; ++p) {
        for (Time m = T;; --m) {
          if (!r.crashed_by(p, m) && r.suspects_at(p, m).contains(q)) {
            if (!last_suspected || m > *last_suspected) last_suspected = m;
            break;
          }
          if (m == 0) break;
        }
      }
      Time cand = last_suspected ? *last_suspected + 1 : 0;
      if (cand <= T && (!best || cand < *best)) best = cand;
    }
    rep.weak_from = best;
  } else {
    rep.weak_from = 0;  // vacuous: no correct process
  }
  return rep;
}

EventualAccuracyReport check_eventual_accuracy(const System& sys) {
  EventualAccuracyReport rep;
  rep.strong_from = 0;
  rep.weak_from = 0;
  for (const Run& r : sys.runs()) {
    EventualAccuracyReport one = check_eventual_accuracy(r);
    if (!one.strong_from) {
      rep.strong_from = std::nullopt;
    } else if (rep.strong_from) {
      rep.strong_from = std::max(*rep.strong_from, *one.strong_from);
    }
    if (!one.weak_from) {
      rep.weak_from = std::nullopt;
    } else if (rep.weak_from) {
      rep.weak_from = std::max(*rep.weak_from, *one.weak_from);
    }
  }
  return rep;
}

FdClass strongest_class(const FdPropertyReport& rep) {
  if (rep.perfect()) return FdClass::kPerfect;
  if (rep.strong()) return FdClass::kStrong;
  if (rep.weak()) return FdClass::kWeak;
  if (rep.impermanent_strong()) return FdClass::kImpermanentStrong;
  if (rep.impermanent_weak()) return FdClass::kImpermanentWeak;
  return FdClass::kNone;
}

const char* fd_class_name(FdClass c) {
  switch (c) {
    case FdClass::kPerfect: return "Perfect";
    case FdClass::kStrong: return "Strong";
    case FdClass::kWeak: return "Weak";
    case FdClass::kImpermanentStrong: return "Impermanent-Strong";
    case FdClass::kImpermanentWeak: return "Impermanent-Weak";
    case FdClass::kNone: return "none";
  }
  return "?";
}

}  // namespace udc
