#include "udc/fd/quality.h"

#include <algorithm>

namespace udc {

FdQuality measure_fd_quality(const Run& r) {
  FdQuality q;
  const int n = r.n();
  const Time T = r.horizon();
  double latency_sum = 0;

  // Detection latency per (correct observer, faulty victim).
  for (ProcessId obs = 0; obs < n; ++obs) {
    if (r.is_faulty(obs)) continue;
    for (ProcessId victim : r.faulty_set()) {
      Time crash = *r.crash_time(victim);
      std::optional<Time> detected;
      for (Time m = crash; m <= T; ++m) {
        if (r.suspects_at(obs, m).contains(victim)) {
          detected = m;
          break;
        }
      }
      if (detected) {
        ++q.detections;
        double lat = static_cast<double>(*detected - crash);
        latency_sum += lat;
        q.max_detection_latency =
            std::max(q.max_detection_latency, *detected - crash);
      } else {
        ++q.missed;
      }
    }
  }
  if (q.detections > 0) {
    q.mean_detection_latency = latency_sum / static_cast<double>(q.detections);
  }

  // Integrated false positives and report load.
  std::size_t false_ticks = 0;
  std::size_t observer_ticks = 0;
  std::size_t reports = 0;
  for (ProcessId obs = 0; obs < n; ++obs) {
    const History& h = r.history(obs);
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].is_failure_detector_event()) ++reports;
    }
    for (Time m = 1; m <= T; ++m) {
      if (r.crashed_by(obs, m)) break;
      ++observer_ticks;
      for (ProcessId victim : r.suspects_at(obs, m)) {
        if (!r.crashed_by(victim, m)) ++false_ticks;
      }
    }
  }
  if (observer_ticks > 0) {
    q.false_positive_rate =
        static_cast<double>(false_ticks) / static_cast<double>(observer_ticks);
    q.report_load =
        static_cast<double>(reports) / static_cast<double>(observer_ticks);
  }
  return q;
}

FdQuality measure_fd_quality(const System& sys) {
  FdQuality agg;
  double latency_sum = 0;
  double fp_sum = 0;
  double load_sum = 0;
  for (const Run& r : sys.runs()) {
    FdQuality one = measure_fd_quality(r);
    latency_sum += one.mean_detection_latency *
                   static_cast<double>(one.detections);
    agg.detections += one.detections;
    agg.missed += one.missed;
    agg.max_detection_latency =
        std::max(agg.max_detection_latency, one.max_detection_latency);
    fp_sum += one.false_positive_rate;
    load_sum += one.report_load;
  }
  if (agg.detections > 0) {
    agg.mean_detection_latency =
        latency_sum / static_cast<double>(agg.detections);
  }
  if (!sys.runs().empty()) {
    agg.false_positive_rate = fp_sum / static_cast<double>(sys.size());
    agg.report_load = load_sum / static_cast<double>(sys.size());
  }
  return agg;
}

}  // namespace udc
