// Empirical checkers for the paper's context assumptions A1-A5t (§3).
//
// A1, A2 and A4 quantify over run *extensions* and so are properties of the
// (infinite) context; on a finite generated system they can only be checked
// as witness coverage: of the instances whose hypotheses arise in the
// system, how many have a witness in the system?  The reports therefore
// carry (checked, satisfied) counts rather than a single boolean — 100%
// coverage on a rich system is strong evidence the generating context has
// the property, and the benches report the fractions alongside the main
// results (see DESIGN.md §2 on substitutions).
//
// A5t (every |S| <= t fails in some run) and A3 (K_q init_p(α) insensitive
// to failure by q, via Def 3.3) are checked exactly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/system.h"

namespace udc {

struct AssumptionReport {
  std::string name;
  std::size_t checked = 0;
  std::size_t satisfied = 0;
  std::size_t vacuous = 0;  // instances whose hypothesis never arose

  bool holds() const { return checked == satisfied; }
  double coverage() const {
    return checked == 0 ? 1.0
                        : static_cast<double>(satisfied) /
                              static_cast<double>(checked);
  }
};

// A5t: for every S with |S| <= t there is a run with F(r) = S.
AssumptionReport check_a5t(const System& sys, int t);

// A1 (failure independence): for each faulty-set S occurring in the system
// and each point (r,m) where no process outside S has crashed and the joint
// cut matches some other run's cut, is there a run extending (r,m) with
// F = S?  Instances are sampled every `stride` time steps up to `max_time`
// (default: the full horizon).  A finite system can only witness
// extensions whose crash times were generated, so meaningful coverage
// checks scope max_time below the plans' crash window.
AssumptionReport check_a1(const System& sys, Time stride = 4,
                          Time max_time = -1);

// A2 (prompt crashability): for sampled pairs of points (r1, m), (r2, m)
// with F(r1) = F(r2) = F that are indistinguishable to every process
// outside F, does the system contain extensions in which every process of
// F has crashed by m+1 and that remain indistinguishable outside F through
// the horizon?  Like A1 this quantifies over extensions, so on a finite
// system it is witness coverage; unlike A1 the hypothesis pairs are rare
// unless the generator deliberately pairs crash plans (same seed, same
// faulty set, different crash times).
AssumptionReport check_a2(const System& sys, Time stride = 8);

// A3: K_q(init_p(alpha)) is insensitive to failure by q, for every process
// q and every action in `actions` (exact, via Def 3.3 witness pairs).
AssumptionReport check_a3(const System& sys,
                          std::span<const ActionId> actions);

// A4 for the formulas Theorem 3.6 actually uses (phi = init_p(alpha)):
// at each sampled point where some nonempty S of processes fail to know
// phi, does the system contain a point (r', m) with (a) r'_q(m) = r_q(m)
// for q in S, (b) for q not in S, r'_q(m) a prefix of r_q(m) possibly
// followed by crash_q, and (c) phi false at (r', m)?
AssumptionReport check_a4(const System& sys,
                          std::span<const ActionId> actions,
                          Time stride = 8);

}  // namespace udc
