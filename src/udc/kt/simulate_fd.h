// The simulation constructions at the heart of the paper's converse
// results.
//
// Theorem 3.6 (P1-P3): from a system R that attains UDC, build
// R^f = { f(r) : r ∈ R } where f doubles time, replays r's non-FD events at
// even steps, and at each odd step 2m+1 gives every live process p the
// report  suspect'_p({ q : (R, r, m) |= K_p crash(q) }).
// If R satisfies A1-A4, A5_{n-1} and actions are initiated throughout, the
// suspect' detectors of R^f are PERFECT.
//
// Theorem 4.3 (P3'): same skeleton, but the odd-step report is the
// generalized pair (S_l, k) with l = |r_p(m+1)| mod 2^n (a fixed enumeration
// S_0..S_{2^n - 1} of subsets of Proc, mask order) and k the largest k' such
// that p knows at least k' processes of S_l have crashed.  Under the bound-t
// analogue of the assumptions, R^f' has t-useful generalized detectors.
//
// Both functions are total on any System — the theorems' preconditions
// govern what the resulting detectors satisfy, which the fd/ checkers then
// measure.  That split is exactly how the benches demonstrate necessity:
// UDC-attaining source systems yield perfect detectors, while the nUDC
// control system yields detectors that fail completeness.
//
// f(r) is a pure function of the (read-only) source system, so both
// constructions shard run-wise across workers: `threads` = 0 uses
// hardware_concurrency, 1 is the exact legacy serial path.  The output
// system — runs AND indistinguishability index — is bit-identical at any
// thread count (the index is built with the same sharded-merge engine, see
// event/system.h).
#pragma once

#include "udc/event/system.h"

namespace udc {

// f applied pointwise; n <= kMaxProcesses as usual.
System build_rf(const System& sys, unsigned threads = 0);

// f' applied pointwise; requires n small enough to enumerate subsets
// (n <= 16 enforced).
System build_rf_prime(const System& sys, unsigned threads = 0);

}  // namespace udc
