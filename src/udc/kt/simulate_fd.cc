#include "udc/kt/simulate_fd.h"

#include <vector>

#include "udc/common/check.h"
#include "udc/fd/convert.h"
#include "udc/kt/knowledge_fd.h"

namespace udc {

System build_rf(const System& sys) {
  std::vector<Run> out;
  out.reserve(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    out.push_back(interleave_reports(
        sys.run(i), [&sys, i](ProcessId p, Time m) -> std::optional<Event> {
          return Event::suspect(known_crashed(sys, Point{i, m}, p));
        }));
  }
  return System(std::move(out));
}

System build_rf_prime(const System& sys) {
  const int n = sys.n();
  UDC_CHECK(n <= 16, "subset enumeration requires n <= 16");
  std::vector<Run> out;
  out.reserve(sys.size());
  const std::uint64_t subsets = std::uint64_t{1} << n;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const Run& r = sys.run(i);
    out.push_back(interleave_reports(
        r,
        [&sys, &r, i, subsets](ProcessId p, Time m) -> std::optional<Event> {
          // P3': the subset index is |r_p(m+1)| mod 2^n.
          std::uint64_t l =
              static_cast<std::uint64_t>(r.history_len(p, m + 1)) % subsets;
          ProcSet s(l);
          int k = known_crashed_count_in(sys, Point{i, m}, p, s);
          return Event::suspect_gen(s, k);
        }));
  }
  return System(std::move(out));
}

}  // namespace udc
