#include "udc/kt/simulate_fd.h"

#include <atomic>
#include <thread>
#include <vector>

#include "udc/common/check.h"
#include "udc/common/parallel.h"
#include "udc/fd/convert.h"
#include "udc/kt/knowledge_fd.h"

namespace udc {
namespace {

// Applies `transform` to every run of `sys` on `threads` workers (runs are
// claimed off a shared counter; each transform reads only the const source
// system) and assembles the results in source order, so the output is
// bit-identical to the serial loop.
template <typename Fn>
System transform_runs(const System& sys, unsigned threads, Fn&& transform) {
  threads = resolve_parallelism(threads, sys.size());
  if (threads <= 1) {
    std::vector<Run> out;
    out.reserve(sys.size());
    for (std::size_t i = 0; i < sys.size(); ++i) out.push_back(transform(i));
    return System(std::move(out));
  }
  std::vector<Run> out(sys.size(), std::move(Run::Builder(sys.n())).build());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sys.size()) return;
      out[i] = transform(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return System(std::move(out), threads);
}

}  // namespace

System build_rf(const System& sys, unsigned threads) {
  return transform_runs(sys, threads, [&sys](std::size_t i) {
    return interleave_reports(
        sys.run(i), [&sys, i](ProcessId p, Time m) -> std::optional<Event> {
          return Event::suspect(known_crashed(sys, Point{i, m}, p));
        });
  });
}

System build_rf_prime(const System& sys, unsigned threads) {
  const int n = sys.n();
  UDC_CHECK(n <= 16, "subset enumeration requires n <= 16");
  const std::uint64_t subsets = std::uint64_t{1} << n;
  return transform_runs(sys, threads, [&sys, subsets](std::size_t i) {
    const Run& r = sys.run(i);
    return interleave_reports(
        r,
        [&sys, &r, i, subsets](ProcessId p, Time m) -> std::optional<Event> {
          // P3': the subset index is |r_p(m+1)| mod 2^n.
          std::uint64_t l =
              static_cast<std::uint64_t>(r.history_len(p, m + 1)) % subsets;
          ProcSet s(l);
          int k = known_crashed_count_in(sys, Point{i, m}, p, s);
          return Event::suspect_gen(s, k);
        });
  });
}

}  // namespace udc
