// Knowledge-based program verification ([FHMV97], cited by the paper).
//
// A knowledge-based program specifies actions by knowledge guards instead
// of message-level mechanics: the derived specification of a UDC protocol
// is, per the paper's §3 analysis,
//
//   (K1)  a process performs α only if it KNOWS α was initiated
//         (DC3 lifted to knowledge: doing implies knowing-why), and
//   (K2)  a CORRECT process performing α knows that, if anyone at all stays
//         up, some never-crashing process knows the init NOW
//         (Proposition 3.5's consequent at the perform point).
//
// check_kbp verifies that a generated system IMPLEMENTS this knowledge-
// based program: every perform point is checked against both guards via
// the model checker.  This is the reusable core of the Prop 3.5 experiment
// and of Theorem 3.6's completeness argument.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "udc/coord/action.h"
#include "udc/event/system.h"
#include "udc/logic/eval.h"

namespace udc {

struct KbpReport {
  std::size_t perform_points = 0;
  std::size_t k1_holds = 0;  // do implies K(init)
  std::size_t k2_holds = 0;  // Prop 3.5 consequent at correct performers
  std::size_t k2_points = 0;  // perform points at correct processes
  std::vector<std::string> violations;

  bool implements() const {
    return k1_holds == perform_points && k2_holds == k2_points;
  }
};

// Verifies the knowledge-based specification over every perform point of
// the system's runs.  `mc` must be a checker over `sys` (sharing it lets
// callers reuse the memo across analyses).
KbpReport check_kbp(ModelChecker& mc, const System& sys,
                    std::span<const ActionId> actions);

}  // namespace udc
