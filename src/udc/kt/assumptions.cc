#include "udc/kt/assumptions.h"

#include <unordered_map>
#include <unordered_set>

#include "udc/coord/action.h"
#include "udc/logic/eval.h"
#include "udc/logic/properties.h"

namespace udc {

namespace {

// r' extends (r, m): identical cuts at every time up to m.  Content
// equality at m plus equal per-step lengths implies equality of all earlier
// cuts (histories are prefix-monotone).
bool extends(const Run& rp, const Run& r, Time m) {
  if (m > rp.horizon() || m > r.horizon()) return false;
  for (ProcessId p = 0; p < r.n(); ++p) {
    if (!Run::indistinguishable(rp, m, r, m, p)) return false;
    for (Time m2 = 0; m2 < m; ++m2) {
      if (rp.history_len(p, m2) != r.history_len(p, m2)) return false;
    }
  }
  return true;
}

// Joint-cut hash at time m (all processes), for candidate filtering.
std::uint64_t joint_hash(const Run& r, Time m) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (ProcessId p = 0; p < r.n(); ++p) {
    h = h * 0x100000001b3ull + r.local_state_hash(p, m);
    h ^= r.history_len(p, m);
  }
  return h;
}

// q's local state in rp at m is a prefix of its state in r at m, optionally
// followed by crash_q (the (b) clause of A4).
bool is_prefix_or_crashed_prefix(const Run& rp, const Run& r, ProcessId q,
                                 Time m) {
  std::size_t len_p = rp.history_len(q, m);
  std::size_t len = r.history_len(q, m);
  const History& hp = rp.history(q);
  const History& h = r.history(q);
  bool ends_in_crash =
      len_p > 0 && hp[len_p - 1].kind == EventKind::kCrash;
  std::size_t body = ends_in_crash ? len_p - 1 : len_p;
  if (body > len) return false;
  // The body must be a prefix of r_q(m).
  if (hp.prefix_hash(body) != h.prefix_hash(body)) return false;
  for (std::size_t i = 0; i < body; ++i) {
    if (!(hp[i] == h[i])) return false;
  }
  if (ends_in_crash) {
    // "... or r'_q(m) = h · crash_q and q crashes by time m in r"
    return r.crashed_by(q, m);
  }
  return true;
}

}  // namespace

AssumptionReport check_a5t(const System& sys, int t) {
  AssumptionReport rep{.name = "A5t"};
  std::unordered_set<std::uint64_t> present;
  for (const Run& r : sys.runs()) present.insert(r.faulty_set().bits());
  const int n = sys.n();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > t) continue;
    ++rep.checked;
    if (present.count(mask) != 0) ++rep.satisfied;
  }
  return rep;
}

AssumptionReport check_a1(const System& sys, Time stride, Time max_time) {
  AssumptionReport rep{.name = "A1"};
  std::unordered_set<std::uint64_t> faulty_sets;
  for (const Run& r : sys.runs()) faulty_sets.insert(r.faulty_set().bits());

  if (max_time < 0 || max_time > sys.max_horizon()) {
    max_time = sys.max_horizon();
  }
  for (Time m = 0; m <= max_time; m += stride) {
    // Candidate extensions, grouped by joint cut.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < sys.size(); ++i) {
      if (m > sys.run(i).horizon()) continue;
      groups[joint_hash(sys.run(i), m)].push_back(i);
    }
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Run& r = sys.run(i);
      if (m > r.horizon()) continue;
      ProcSet crashed_now;
      for (ProcessId q = 0; q < sys.n(); ++q) {
        if (r.crashed_by(q, m)) crashed_now.insert(q);
      }
      for (std::uint64_t s_bits : faulty_sets) {
        ProcSet s(s_bits);
        // Hypothesis: some run has F = S (true, S came from the system) and
        // no process outside S has crashed at (r, m).
        if (!(crashed_now - s).empty()) {
          ++rep.vacuous;
          continue;
        }
        ++rep.checked;
        bool found = false;
        for (std::size_t j : groups[joint_hash(r, m)]) {
          if (sys.run(j).faulty_set() == s && extends(sys.run(j), r, m)) {
            found = true;
            break;
          }
        }
        if (found) ++rep.satisfied;
      }
    }
  }
  return rep;
}

AssumptionReport check_a2(const System& sys, Time stride) {
  AssumptionReport rep{.name = "A2"};
  const int n = sys.n();
  // Pre-compute, for every run, the time by which all its faulty processes
  // have crashed (kTimeMax if F empty never matters: F = {} pairs are
  // vacuous for the "crash by m+1" clause but still need indistinguishable
  // extensions, which the runs themselves provide).
  auto all_crashed_by = [](const Run& r) {
    Time t = 0;
    for (ProcessId q : r.faulty_set()) t = std::max(t, *r.crash_time(q));
    return t;
  };
  auto indist_outside_f = [n](const Run& a, Time ma, const Run& b, Time mb,
                              ProcSet f) {
    for (ProcessId q = 0; q < n; ++q) {
      if (f.contains(q)) continue;
      if (!Run::indistinguishable(a, ma, b, mb, q)) return false;
    }
    return true;
  };

  for (Time m = 0; m <= sys.max_horizon(); m += stride) {
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Run& r1 = sys.run(i);
      if (m > r1.horizon()) continue;
      for (std::size_t j = i; j < sys.size(); ++j) {
        const Run& r2 = sys.run(j);
        if (m > r2.horizon()) continue;
        ProcSet f = r1.faulty_set();
        if (r2.faulty_set() != f) continue;
        if (!indist_outside_f(r1, m, r2, m, f)) {
          ++rep.vacuous;
          continue;
        }
        ++rep.checked;
        // Witness search: extensions of (r1, m) and (r2, m) in which all of
        // F crashed by m+1 and that stay indistinguishable outside F.
        bool found = false;
        for (std::size_t a = 0; a < sys.size() && !found; ++a) {
          const Run& e1 = sys.run(a);
          if (e1.faulty_set() != f || all_crashed_by(e1) > m + 1) continue;
          if (!extends(e1, r1, m)) continue;
          for (std::size_t c = 0; c < sys.size() && !found; ++c) {
            const Run& e2 = sys.run(c);
            if (e2.faulty_set() != f || all_crashed_by(e2) > m + 1) continue;
            if (!extends(e2, r2, m)) continue;
            bool indist_forever = true;
            Time top = std::max(e1.horizon(), e2.horizon());
            for (Time m2 = m; m2 <= top && indist_forever; m2 += 1) {
              indist_forever = indist_outside_f(e1, m2, e2, m2, f);
            }
            found = indist_forever;
          }
        }
        if (found) ++rep.satisfied;
      }
    }
  }
  return rep;
}

AssumptionReport check_a3(const System& sys,
                          std::span<const ActionId> actions) {
  AssumptionReport rep{.name = "A3"};
  ModelChecker mc(sys);
  for (ActionId alpha : actions) {
    ProcessId owner = action_owner(alpha);
    for (ProcessId q = 0; q < sys.n(); ++q) {
      ++rep.checked;
      if (is_insensitive_to_failure_by(mc, sys, q,
                                       f_knows(q, f_init(owner, alpha)))) {
        ++rep.satisfied;
      }
    }
  }
  return rep;
}

AssumptionReport check_a4(const System& sys,
                          std::span<const ActionId> actions, Time stride) {
  AssumptionReport rep{.name = "A4"};
  for (ActionId alpha : actions) {
    ProcessId owner = action_owner(alpha);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Run& r = sys.run(i);
      for (Time m = 0; m <= r.horizon(); m += stride) {
        // S := the processes that do not know init_owner(alpha) at (r, m).
        ProcSet s;
        for (ProcessId q = 0; q < sys.n(); ++q) {
          bool knows = true;
          for (Point other : sys.equivalence_class(q, Point{i, m})) {
            if (!sys.run(other.run).init_in(owner, other.m, alpha)) {
              knows = false;
              break;
            }
          }
          if (!knows) s.insert(q);
        }
        if (s.empty()) {
          ++rep.vacuous;
          continue;
        }
        ++rep.checked;
        bool found = false;
        for (std::size_t j = 0; j < sys.size() && !found; ++j) {
          const Run& rp = sys.run(j);
          if (m > rp.horizon()) continue;
          if (rp.init_in(owner, m, alpha)) continue;  // (c) fails
          bool ok = true;
          for (ProcessId q = 0; q < sys.n() && ok; ++q) {
            if (s.contains(q)) {
              ok = Run::indistinguishable(rp, m, r, m, q);  // (a)
            } else {
              ok = is_prefix_or_crashed_prefix(rp, r, q, m);  // (b)
            }
          }
          found = ok;
        }
        if (found) ++rep.satisfied;
      }
    }
  }
  return rep;
}

}  // namespace udc
