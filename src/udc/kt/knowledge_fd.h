// Knowledge-based suspicion: what a process KNOWS about crashes, in the
// [FHMV95] sense, relative to a system.
//
//   known_crashed(R, (r,m), p)  =  { q : (R, r, m) |= K_p crash(q) }
//
// K_p crash(q) holds iff crash_q has occurred at *every* point of R that p
// cannot distinguish from (r,m).  Because (r,m) is in its own equivalence
// class, knowledge is veridical: known_crashed ⊆ actually-crashed, which is
// exactly why the Theorem 3.6 detector is strongly accurate for free — the
// entire content of the theorem is completeness.
//
// Both functions are computed directly from the equivalence classes (no
// formula machinery), with formula-based twins used in tests to cross-check
// the model checker.
#pragma once

#include "udc/common/proc_set.h"
#include <optional>

#include "udc/event/system.h"
#include "udc/logic/formula.h"

namespace udc {

// { q : (R, r, m) |= K_p crash(q) } for the point `at`.
ProcSet known_crashed(const System& sys, Point at, ProcessId p);

// max k' such that (R, r, m) |= K_p("at least k' processes of S have
// crashed") — i.e. the minimum of |crashed ∩ S| over p's equivalence class.
int known_crashed_count_in(const System& sys, Point at, ProcessId p,
                           ProcSet s);

// Knowledge frontier: the first time in run `run_index` at which
// (R, r, m) |= K_p(phi) — the workhorse behind the udc_explore tool's
// frontier view and the FIP experiments.  nullopt if never within the
// horizon.  `mc` must be a checker over `sys`.
std::optional<Time> first_knowledge_time(class ModelChecker& mc,
                                         const System& sys,
                                         std::size_t run_index, ProcessId p,
                                         const FormulaPtr& phi);

// Bulk form: the knowledge frontier of phi for EVERY (run, process) pair,
// run-sharded across `threads` workers (0 = hardware_concurrency, 1 = one
// serial checker).  result[i][p] = first_knowledge_time for run i and
// process p; identical to calling first_knowledge_time pairwise.
std::vector<std::vector<std::optional<Time>>> knowledge_frontier(
    const System& sys, const FormulaPtr& phi, unsigned threads = 0);

}  // namespace udc
