#include "udc/kt/knowledge_fd.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "udc/common/parallel.h"
#include "udc/logic/eval.h"

namespace udc {

ProcSet known_crashed(const System& sys, Point at, ProcessId p) {
  ProcSet known = ProcSet::full(sys.n());
  for (Point other : sys.equivalence_class(p, at)) {
    const Run& r = sys.run(other.run);
    ProcSet crashed_here;
    for (ProcessId q = 0; q < sys.n(); ++q) {
      if (r.crashed_by(q, other.m)) crashed_here.insert(q);
    }
    known &= crashed_here;
    if (known.empty()) break;
  }
  return known;
}

int known_crashed_count_in(const System& sys, Point at, ProcessId p,
                           ProcSet s) {
  int known = s.size();
  for (Point other : sys.equivalence_class(p, at)) {
    const Run& r = sys.run(other.run);
    int crashed_here = 0;
    for (ProcessId q : s) {
      if (r.crashed_by(q, other.m)) ++crashed_here;
    }
    known = std::min(known, crashed_here);
    if (known == 0) break;
  }
  return known;
}

std::optional<Time> first_knowledge_time(ModelChecker& mc, const System& sys,
                                         std::size_t run_index, ProcessId p,
                                         const FormulaPtr& phi) {
  auto knows = f_knows(p, phi);
  for (Time m = 0; m <= sys.run(run_index).horizon(); ++m) {
    if (mc.holds_at(Point{run_index, m}, knows)) return m;
  }
  return std::nullopt;
}

std::vector<std::vector<std::optional<Time>>> knowledge_frontier(
    const System& sys, const FormulaPtr& phi, unsigned threads) {
  threads = resolve_parallelism(threads, sys.size());
  std::vector<std::vector<std::optional<Time>>> result(sys.size());
  if (threads <= 1) {
    ModelChecker mc(sys);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      result[i].reserve(static_cast<std::size_t>(sys.n()));
      for (ProcessId p = 0; p < sys.n(); ++p) {
        result[i].push_back(first_knowledge_time(mc, sys, i, p, phi));
      }
    }
    return result;
  }
  // Each worker claims whole runs and answers them with a private checker
  // over the shared read-only system; per-pair answers don't depend on
  // checker state, so the table matches the serial one exactly.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    ModelChecker mc(sys);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sys.size()) return;
      result[i].reserve(static_cast<std::size_t>(sys.n()));
      for (ProcessId p = 0; p < sys.n(); ++p) {
        result[i].push_back(first_knowledge_time(mc, sys, i, p, phi));
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return result;
}

}  // namespace udc
