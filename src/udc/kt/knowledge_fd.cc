#include "udc/kt/knowledge_fd.h"

#include <algorithm>

#include "udc/logic/eval.h"

namespace udc {

ProcSet known_crashed(const System& sys, Point at, ProcessId p) {
  ProcSet known = ProcSet::full(sys.n());
  for (Point other : sys.equivalence_class(p, at)) {
    const Run& r = sys.run(other.run);
    ProcSet crashed_here;
    for (ProcessId q = 0; q < sys.n(); ++q) {
      if (r.crashed_by(q, other.m)) crashed_here.insert(q);
    }
    known &= crashed_here;
    if (known.empty()) break;
  }
  return known;
}

int known_crashed_count_in(const System& sys, Point at, ProcessId p,
                           ProcSet s) {
  int known = s.size();
  for (Point other : sys.equivalence_class(p, at)) {
    const Run& r = sys.run(other.run);
    int crashed_here = 0;
    for (ProcessId q : s) {
      if (r.crashed_by(q, other.m)) ++crashed_here;
    }
    known = std::min(known, crashed_here);
    if (known == 0) break;
  }
  return known;
}

std::optional<Time> first_knowledge_time(ModelChecker& mc, const System& sys,
                                         std::size_t run_index, ProcessId p,
                                         const FormulaPtr& phi) {
  auto knows = f_knows(p, phi);
  for (Time m = 0; m <= sys.run(run_index).horizon(); ++m) {
    if (mc.holds_at(Point{run_index, m}, knows)) return m;
  }
  return std::nullopt;
}

}  // namespace udc
