#include "udc/kt/kbp.h"

#include <sstream>

namespace udc {

KbpReport check_kbp(ModelChecker& mc, const System& sys,
                    std::span<const ActionId> actions) {
  KbpReport rep;
  const int n = sys.n();
  for (ActionId alpha : actions) {
    ProcessId owner = action_owner(alpha);
    // The Prop 3.5 consequent, built once per action.
    std::vector<FormulaPtr> someone_up;
    std::vector<FormulaPtr> witness;
    for (ProcessId q = 0; q < n; ++q) {
      someone_up.push_back(f_always(f_not(f_crash(q))));
      witness.push_back(f_and(f_knows(q, f_init(owner, alpha)),
                              f_always(f_not(f_crash(q)))));
    }
    auto consequent = f_implies(Formula::disjunction(someone_up),
                                Formula::disjunction(witness));
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Run& r = sys.run(i);
      for (ProcessId p = 0; p < n; ++p) {
        auto m_do = r.first_event_time(p, [alpha](const Event& e) {
          return e.kind == EventKind::kDo && e.action == alpha;
        });
        if (!m_do) continue;
        Point at{i, *m_do};
        ++rep.perform_points;
        if (mc.holds_at(at, f_knows(p, f_init(owner, alpha)))) {
          ++rep.k1_holds;
        } else {
          std::ostringstream out;
          out << "K1: p" << p << " performed α" << alpha << " in run " << i
              << " at t=" << *m_do << " without knowing init";
          rep.violations.push_back(out.str());
        }
        if (r.is_faulty(p)) continue;
        ++rep.k2_points;
        if (mc.holds_at(at, f_knows(p, consequent))) {
          ++rep.k2_holds;
        } else {
          std::ostringstream out;
          out << "K2: correct p" << p << " performed α" << alpha << " in run "
              << i << " at t=" << *m_do
              << " without knowing a correct knower exists";
          rep.violations.push_back(out.str());
        }
      }
    }
  }
  return rep;
}

}  // namespace udc
