// System generation: sweep crash plans × seeds for one protocol/context and
// collect the validated runs into a System.
//
// The knowledge operator and the Theorem 3.6 / 4.3 constructions are defined
// relative to a *system*, so experiments need whole systems, not single
// runs.  Assumption A5t ("every subset of size <= t fails in some run") is
// realized by sweeping all_crash_plans_up_to; A1-style failure independence
// is approximated by crossing crash plans with independent channel seeds.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "udc/common/budget.h"
#include "udc/event/system.h"
#include "udc/fd/oracle.h"
#include "udc/sim/context.h"
#include "udc/sim/process.h"
#include "udc/sim/simulator.h"

namespace udc {

using OracleFactory = std::function<std::unique_ptr<FdOracle>()>;

struct SystemStats {
  std::size_t runs = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_dropped = 0;
};

// One run per (plan, seed) pair; seeds are base.seed, base.seed+1, ....
// `oracle_factory` may be null (no failure detector).
System generate_system(const SimConfig& base,
                       std::span<const CrashPlan> plans,
                       std::span<const InitDirective> workload,
                       const OracleFactory& oracle_factory,
                       const ProtocolFactory& protocol_factory,
                       int seeds_per_plan, SystemStats* stats = nullptr);

// One run per (plan, workload, seed-offset) triple, with the SAME seed
// stream across plans and workloads for each offset, so runs differ only
// where the failure pattern or init pattern forces them to.  This is what
// makes a finite system rich in the paper's sense: crashing or not, and
// initiating or not, become genuinely independent (A1/A3/A4's richness) —
// e.g. a process that crashes before hearing of an action has an
// indistinguishable twin in the workload variant where the action never
// happened.  Typical workload sets include the full workload plus, per
// action, a variant omitting it (see workload_variants in coord/action.h).
System generate_system_multi(const SimConfig& base,
                             std::span<const CrashPlan> plans,
                             std::span<const std::vector<InitDirective>> workloads,
                             const OracleFactory& oracle_factory,
                             const ProtocolFactory& protocol_factory,
                             int seeds_per_combo,
                             SystemStats* stats = nullptr);

// Multithreaded twin of generate_system: each (plan, seed) run is a pure
// function of its inputs, so runs are produced on `threads` workers and
// assembled in the same deterministic order — the result is bit-identical
// to the serial version (test_parallel.cc asserts it).  Factories must be
// thread-compatible: they are invoked concurrently, so they must not share
// mutable state across the protocol/oracle instances they return (all
// factories in this repository qualify).
System generate_system_parallel(const SimConfig& base,
                                std::span<const CrashPlan> plans,
                                std::span<const InitDirective> workload,
                                const OracleFactory& oracle_factory,
                                const ProtocolFactory& protocol_factory,
                                int seeds_per_plan, unsigned threads = 0,
                                SystemStats* stats = nullptr);

// Budget-bounded generation (graceful degradation): the (plan, seed) sweep
// stops as soon as the budget trips — deadline or max_runs — and the runs
// completed so far become the (partial) system.  The partial system's runs
// are exactly the first runs_completed runs the unbudgeted sweep would have
// produced, so downstream checkers see a prefix, never a mutation.  The
// system is nullopt only when the budget tripped before the first run.
struct BudgetedSystem {
  std::optional<System> system;
  BudgetStatus status = BudgetStatus::kComplete;
  std::size_t runs_completed = 0;
  SystemStats stats;
};

// `threads` > 1 produces runs on a worker pool while preserving the exact
// prefix property: jobs are claimed in sweep order, the budget is checked at
// claim time, and any run completed beyond the first gap is discarded.  A
// max_runs cap therefore yields bit-identical results at every thread count
// (the cap trips at a deterministic claim index); a deadline yields a
// nondeterministic-length but still exact prefix.  Overshoot is bounded by
// one in-flight run per worker.
BudgetedSystem generate_system_budgeted(const SimConfig& base,
                                        std::span<const CrashPlan> plans,
                                        std::span<const InitDirective> workload,
                                        const OracleFactory& oracle_factory,
                                        const ProtocolFactory& protocol_factory,
                                        int seeds_per_plan,
                                        const Budget& budget,
                                        unsigned threads = 1);

}  // namespace udc
