// The discrete-event simulator: runs a joint protocol in a context and
// produces a validated Run.
//
// Per tick, for each live process, exactly one of the following becomes the
// process's event (priority order):
//   1. crash            — the plan says it crashes now (R4: final event)
//   2. init_p(alpha)    — a pending workload directive for this process
//   3. suspect_p(...)   — the failure-detector oracle emits a report
//   4. recv_p(q, msg)   — a ripe message is delivered
//   5. send / do        — the head of the process's intent outbox
// and protocol callbacks fire accordingly.  Everything is a deterministic
// function of (config, plan, workload, protocol), so runs regenerate
// bit-identically from a seed.
#pragma once

#include <span>
#include <vector>

#include "udc/event/run.h"
#include "udc/fd/oracle.h"
#include "udc/sim/context.h"
#include "udc/sim/process.h"

namespace udc {

struct SimResult {
  Run run;
  std::size_t messages_sent = 0;
  std::size_t messages_dropped = 0;
  // Init directives skipped because their process had already crashed.
  std::size_t inits_skipped = 0;
};

// `oracle` may be nullptr (the "no failure detector" context).
SimResult simulate(const SimConfig& config, const CrashPlan& plan,
                   FdOracle* oracle, std::span<const InitDirective> workload,
                   const ProtocolFactory& factory);

}  // namespace udc
