#include "udc/sim/simulator.h"

#include <algorithm>
#include <deque>

#include "udc/common/check.h"
#include "udc/net/network.h"

namespace udc {

namespace {

// One queued intent: either a send or a do.
struct Intent {
  enum class Kind { kSend, kDo } kind;
  ProcessId to = kInvalidProcess;  // kSend
  Message msg;                     // kSend
  ActionId action = kInvalidAction;  // kDo
};

class EnvImpl final : public Env {
 public:
  EnvImpl(ProcessId self, int n) : self_(self), n_(n) {}

  ProcessId self() const override { return self_; }
  int n() const override { return n_; }
  Time now() const override { return now_; }
  void send(ProcessId to, const Message& msg) override {
    UDC_CHECK(to >= 0 && to < n_ && to != self_,
              "send target out of range or self");
    outbox_.push_back(Intent{Intent::Kind::kSend, to, msg, kInvalidAction});
  }
  void perform(ActionId alpha) override {
    outbox_.push_back(
        Intent{Intent::Kind::kDo, kInvalidProcess, Message{}, alpha});
  }
  bool outbox_empty() const override { return outbox_.empty(); }
  std::size_t outbox_size() const override { return outbox_.size(); }

  void set_now(Time t) { now_ = t; }
  std::deque<Intent>& outbox() { return outbox_; }

 private:
  ProcessId self_;
  int n_;
  Time now_ = 0;
  std::deque<Intent> outbox_;
};

}  // namespace

SimResult simulate(const SimConfig& config, const CrashPlan& plan,
                   FdOracle* oracle, std::span<const InitDirective> workload,
                   const ProtocolFactory& factory) {
  const int n = config.n;
  UDC_CHECK(plan.n() == n, "crash plan size mismatch");

  Network net(n, config.channel.make_policy(), config.channel.max_delay,
              config.seed ^ 0x6e657477u /* "netw" */);
  if (oracle != nullptr) {
    oracle->begin_run(plan, config.seed ^ 0x6f7261u /* "ora" */);
  }

  std::vector<std::unique_ptr<Process>> procs;
  std::vector<EnvImpl> envs;
  envs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(factory(p));
    envs.emplace_back(p, n);
  }
  for (ProcessId p = 0; p < n; ++p) {
    procs[p]->on_start(envs[p]);
  }

  // Pending workload, sorted by time; one pass cursor per tick.
  std::vector<InitDirective> inits(workload.begin(), workload.end());
  std::stable_sort(inits.begin(), inits.end(),
                   [](const InitDirective& a, const InitDirective& b) {
                     return a.at < b.at;
                   });
  std::vector<bool> init_done(inits.size(), false);

  Run::Builder builder(n);
  std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  for (Time m = 1; m <= config.horizon; ++m) {
    for (ProcessId p = 0; p < n; ++p) {
      if (crashed[static_cast<std::size_t>(p)]) continue;
      EnvImpl& env = envs[p];
      env.set_now(m);

      // 1. scheduled crash
      if (plan.crash_time(p) == m) {
        builder.append(p, Event::crash());
        crashed[static_cast<std::size_t>(p)] = true;
        continue;
      }

      procs[p]->on_tick(env);

      // 2. workload init directive
      {
        bool took_slot = false;
        for (std::size_t i = 0; i < inits.size() && inits[i].at <= m; ++i) {
          if (init_done[i] || inits[i].p != p) continue;
          init_done[i] = true;
          builder.append(p, Event::init(inits[i].action));
          procs[p]->on_init(inits[i].action, env);
          took_slot = true;
          break;
        }
        if (took_slot) continue;
      }

      // 3. failure-detector report
      if (oracle != nullptr) {
        if (auto report = oracle->report(p, m)) {
          builder.append(p, *report);
          if (report->kind == EventKind::kSuspect) {
            procs[p]->on_suspect(report->suspects, env);
          } else {
            procs[p]->on_suspect_gen(report->suspects, report->k, env);
          }
          continue;
        }
      }

      // 4./5. message delivery vs head-of-outbox intent.  The priority
      // alternates per tick: under sustained traffic a fixed recv-first
      // rule starves the outbox (the process can never send its own acks,
      // so its peers retransmit forever — a livelock), while send-first
      // starves delivery.  Alternation guarantees each side at least every
      // other slot, which keeps both queues live (R5-friendly).
      // Hash-based coin (not plain parity: a parity rule can phase-lock
      // against periodic failure-detector reports, permanently starving one
      // side on the remaining ticks).
      std::uint64_t coin = static_cast<std::uint64_t>(m) * 0x9e3779b97f4a7c15ull +
                           static_cast<std::uint64_t>(p) * 0xbf58476d1ce4e5b9ull;
      coin ^= coin >> 29;
      bool recv_first = (coin & 1) == 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        bool try_recv = recv_first == (attempt == 0);
        if (try_recv) {
          if (auto delivery = net.pop_deliverable(p, m)) {
            builder.append(p, Event::recv(delivery->from, delivery->msg));
            procs[p]->on_receive(delivery->from, delivery->msg, env);
            break;
          }
        } else if (!env.outbox().empty()) {
          Intent intent = std::move(env.outbox().front());
          env.outbox().pop_front();
          if (intent.kind == Intent::Kind::kSend) {
            net.send(p, intent.to, intent.msg, m);
            builder.append(p, Event::send(intent.to, intent.msg));
          } else {
            builder.append(p, Event::do_action(intent.action));
          }
          break;
        }
      }
    }
    builder.end_step();
  }

  // Workload directives whose process crashed first.
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < inits.size(); ++i) {
    if (!init_done[i]) ++skipped;
  }

  return SimResult{std::move(builder).build(), net.total_sent(),
                   net.total_dropped(), skipped};
}

}  // namespace udc
