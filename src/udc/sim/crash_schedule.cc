#include "udc/sim/crash_schedule.h"

#include <algorithm>

#include "udc/common/check.h"
#include "udc/common/rng.h"

namespace udc {

CrashPlan no_crashes(int n) {
  return CrashPlan(n, std::vector<std::optional<Time>>(
                          static_cast<std::size_t>(n), std::nullopt));
}

CrashPlan make_crash_plan(int n,
                          std::vector<std::pair<ProcessId, Time>> crashes) {
  std::vector<std::optional<Time>> times(static_cast<std::size_t>(n),
                                         std::nullopt);
  for (auto& [p, t] : crashes) {
    UDC_CHECK(p >= 0 && p < n, "crash plan names out-of-range process");
    UDC_CHECK(t >= 1, "crash time must be >= 1");
    UDC_CHECK(!times[static_cast<std::size_t>(p)].has_value(),
              "process crashes twice in plan");
    times[static_cast<std::size_t>(p)] = t;
  }
  return CrashPlan(n, std::move(times));
}

std::vector<CrashPlan> all_crash_plans_up_to(int n, int t, Time earliest,
                                             Time latest) {
  UDC_CHECK(t >= 0 && t <= n, "failure bound out of range");
  UDC_CHECK(earliest >= 1 && latest >= earliest, "bad crash time window");
  std::vector<CrashPlan> plans;
  Time stagger =
      t > 1 ? std::max<Time>(1, (latest - earliest) / (t - 1)) : 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > t) continue;
    std::vector<std::pair<ProcessId, Time>> crashes;
    int i = 0;
    for (ProcessId p : ProcSet(mask)) {
      crashes.emplace_back(p, std::min(latest, earliest + i * stagger));
      ++i;
    }
    plans.push_back(make_crash_plan(n, std::move(crashes)));
  }
  return plans;
}

std::vector<CrashPlan> sampled_crash_plans(int n, int t, int count,
                                           Time earliest, Time latest,
                                           std::uint64_t seed) {
  UDC_CHECK(t >= 0 && t <= n, "failure bound out of range");
  UDC_CHECK(earliest >= 1 && latest >= earliest, "bad crash time window");
  Rng rng(seed);
  std::vector<CrashPlan> plans;
  plans.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int f = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(t) + 1));
    // Choose f distinct processes.
    ProcSet chosen;
    while (chosen.size() < f) {
      chosen.insert(
          static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n))));
    }
    std::vector<std::pair<ProcessId, Time>> crashes;
    for (ProcessId p : chosen) {
      Time at = earliest + static_cast<Time>(rng.next_below(
                               static_cast<std::uint64_t>(latest - earliest + 1)));
      crashes.emplace_back(p, at);
    }
    plans.push_back(make_crash_plan(n, std::move(crashes)));
  }
  return plans;
}

}  // namespace udc
