// Contexts (§2.1): "a bound on the number of processes that can fail, a
// specification of properties of failure detectors, and a specification of
// communication properties."  SimConfig is the machine form of a context,
// plus simulation-only knobs (horizon, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "udc/common/types.h"
#include "udc/net/network.h"

namespace udc {

struct ChannelConfig {
  // 0.0 => reliable channels; > 0 => fair-lossy with i.i.d. loss.
  double drop_prob = 0.0;
  // Per-message delivery delay is uniform in [1, max_delay] ticks.
  int max_delay = 3;
  // If set, overrides the i.i.d. policy (e.g. PartitionDropPolicy for the
  // necessity probes).  NOTE: a custom policy may violate fairness R5 — that
  // is the point of the impossibility experiments.
  std::shared_ptr<DropPolicy> custom_policy;

  // Every simulation gets its OWN policy instance: custom_policy is cloned,
  // never handed out.  A stateful adversarial policy (Gilbert-Elliott
  // chains, scripted fault windows) shared across a seed sweep would carry
  // Markov state from one run into the next, making runs depend on sweep
  // order instead of being pure functions of (config, plan, workload).
  std::shared_ptr<DropPolicy> make_policy() const {
    if (custom_policy) return custom_policy->clone();
    return std::make_shared<IidDropPolicy>(drop_prob);
  }
  bool reliable() const { return custom_policy == nullptr && drop_prob == 0.0; }
};

// The environment initiates action `action` at process `p` at time `at`
// (the workload; §2.4's init_p events).
struct InitDirective {
  Time at = 1;
  ProcessId p = 0;
  ActionId action = kInvalidAction;
};

struct SimConfig {
  int n = 4;
  Time horizon = 240;
  ChannelConfig channel;
  std::uint64_t seed = 1;
};

}  // namespace udc
