// Crash-plan generators.
//
// A CrashPlan (fd/oracle.h) fixes which processes crash and when — the
// "failure pattern" of the Chandra-Toueg model.  System generation sweeps
// plans: exhaustively over subsets (assumption A5t says every subset of size
// <= t fails in some run, so system-level experiments must include them
// all), or sampled for the larger Monte-Carlo benches.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "udc/fd/oracle.h"

namespace udc {

CrashPlan no_crashes(int n);

CrashPlan make_crash_plan(int n,
                          std::vector<std::pair<ProcessId, Time>> crashes);

// All plans with faulty set S for every S with |S| <= t.  Crash times are
// assigned deterministically, staggered across [earliest, latest]: the i-th
// member of S (ascending) crashes at earliest + i * stagger (clamped to
// latest).  One plan per subset — enough for the A5t sweep while keeping
// system sizes tractable.
std::vector<CrashPlan> all_crash_plans_up_to(int n, int t, Time earliest,
                                             Time latest);

// `count` random plans, each with 0..t faulty processes and crash times
// uniform in [earliest, latest].
std::vector<CrashPlan> sampled_crash_plans(int n, int t, int count,
                                           Time earliest, Time latest,
                                           std::uint64_t seed);

}  // namespace udc
