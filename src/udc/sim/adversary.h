// Adversarial schedule construction.
//
// The necessity probes need crashes placed at the WORST moment — e.g.
// "right after the initiator performs, before anything escapes".  Since
// runs are deterministic functions of (config, plan, workload, protocol),
// the adversary can afford a reconnaissance pass: simulate without the
// crash, observe when the interesting event happens, then emit the plan
// that strikes just after it.  This two-phase trick is exactly the
// adversary quantification in the paper's impossibility arguments, made
// executable.
#pragma once

#include <optional>
#include <span>

#include "udc/fd/oracle.h"
#include "udc/sim/context.h"
#include "udc/sim/process.h"
#include "udc/sim/system_factory.h"

namespace udc {

// Runs a reconnaissance simulation (no crashes, `oracle` may be null) and
// returns a plan crashing `victim` `delay` ticks after its first do event —
// or nullopt if the victim never performs (nothing to strike at).
std::optional<CrashPlan> crash_after_first_do(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay = 1);

// Same reconnaissance, striking `delay` ticks after the victim's first SEND
// (the "performer dies before its message is even out" schedules).
std::optional<CrashPlan> crash_after_first_send(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay = 1);

// Reconnaissance against an explicit base schedule: the recon run executes
// `base` as-is (other processes may already be crashing), and the result is
// `base` with the victim's strike added.  nullopt when there is nothing to
// add: the victim never acts in the base run (in particular when `base`
// crashes it before it could), or `base` already kills the victim at or
// before the strike time.  A strike past the horizon is allowed — the plan
// names a crash the finite run never reaches, so the victim stays correct
// (callers probing "does the threat alone change anything" rely on that).
std::optional<CrashPlan> crash_after_first_do(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay, const CrashPlan& base);

std::optional<CrashPlan> crash_after_first_send(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay, const CrashPlan& base);

}  // namespace udc
