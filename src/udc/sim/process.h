// Protocol interface for simulated processes.
//
// R2 requires at most one event per process per time step, so protocol
// callbacks never emit events directly: they enqueue *intents* (sends and
// action executions) into a per-process outbox via Env, and the simulator
// materializes one intent per tick.  This makes every protocol R2-correct
// by construction and matches the paper's model of a protocol as a function
// from local histories to actions.
#pragma once

#include <functional>
#include <memory>

#include "udc/common/proc_set.h"
#include "udc/common/types.h"
#include "udc/event/message.h"

namespace udc {

class Env {
 public:
  virtual ~Env() = default;
  virtual ProcessId self() const = 0;
  virtual int n() const = 0;
  virtual Time now() const = 0;

  // Enqueues a send intent (one send event on a later tick).
  virtual void send(ProcessId to, const Message& msg) = 0;
  // Enqueues a do_p(alpha) intent.
  virtual void perform(ActionId alpha) = 0;

  virtual bool outbox_empty() const = 0;
  virtual std::size_t outbox_size() const = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  // Called once, before the first tick.
  virtual void on_start(Env&) {}
  // Called every tick while the process is alive, before event selection.
  // Typical use: pace retransmissions (enqueue only when the outbox is
  // empty, so a lossy channel sees the same message again and again — the
  // repetition R5's fairness clause rewards).
  virtual void on_tick(Env&) {}
  // The environment initiated a coordination action at this process.
  virtual void on_init(ActionId /*alpha*/, Env&) {}
  virtual void on_receive(ProcessId from, const Message& msg, Env&) = 0;
  // Standard failure-detector report (§2.2).
  virtual void on_suspect(ProcSet /*suspects*/, Env&) {}
  // Generalized report (§4).
  virtual void on_suspect_gen(ProcSet /*s*/, int /*k*/, Env&) {}
  // Live-runtime recovery notification, below the paper's model: peer q
  // crashed and restarted from its durable log, possibly losing its most
  // recent state (a lossy disk forgets a SUFFIX of q's history).  Protocol
  // state derived from q's pre-crash messages — acks held from q above all —
  // may describe knowledge q no longer has; implementations whose
  // retransmission stops on such state must withdraw it so q is re-taught
  // (see udc_strongfd; protocols that resend forever need nothing).
  // Simulated runs never call this.
  virtual void on_peer_recovered(ProcessId /*q*/, Env&) {}
};

using ProtocolFactory = std::function<std::unique_ptr<Process>(ProcessId)>;

}  // namespace udc
