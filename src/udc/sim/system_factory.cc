#include "udc/sim/system_factory.h"

#include <atomic>
#include <thread>

#include "udc/common/check.h"

namespace udc {

System generate_system(const SimConfig& base,
                       std::span<const CrashPlan> plans,
                       std::span<const InitDirective> workload,
                       const OracleFactory& oracle_factory,
                       const ProtocolFactory& protocol_factory,
                       int seeds_per_plan, SystemStats* stats) {
  UDC_CHECK(!plans.empty(), "need at least one crash plan");
  UDC_CHECK(seeds_per_plan >= 1, "need at least one seed per plan");
  std::vector<Run> runs;
  runs.reserve(plans.size() * static_cast<std::size_t>(seeds_per_plan));
  std::uint64_t seed = base.seed;
  for (const CrashPlan& plan : plans) {
    for (int s = 0; s < seeds_per_plan; ++s, ++seed) {
      SimConfig config = base;
      config.seed = seed;
      std::unique_ptr<FdOracle> oracle;
      if (oracle_factory) oracle = oracle_factory();
      SimResult result = simulate(config, plan, oracle.get(), workload,
                                  protocol_factory);
      if (stats != nullptr) {
        stats->runs++;
        stats->messages_sent += result.messages_sent;
        stats->messages_dropped += result.messages_dropped;
      }
      runs.push_back(std::move(result.run));
    }
  }
  return System(std::move(runs));
}

System generate_system_multi(const SimConfig& base,
                             std::span<const CrashPlan> plans,
                             std::span<const std::vector<InitDirective>> workloads,
                             const OracleFactory& oracle_factory,
                             const ProtocolFactory& protocol_factory,
                             int seeds_per_combo, SystemStats* stats) {
  UDC_CHECK(!plans.empty(), "need at least one crash plan");
  UDC_CHECK(!workloads.empty(), "need at least one workload");
  UDC_CHECK(seeds_per_combo >= 1, "need at least one seed per combination");
  std::vector<Run> runs;
  runs.reserve(plans.size() * workloads.size() *
               static_cast<std::size_t>(seeds_per_combo));
  for (int s = 0; s < seeds_per_combo; ++s) {
    SimConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(s);
    // Crucially, the SAME seed is reused across plans and workloads within
    // one offset: divergence between runs then comes only from the failure
    // and init patterns themselves.
    for (const CrashPlan& plan : plans) {
      for (const auto& workload : workloads) {
        std::unique_ptr<FdOracle> oracle;
        if (oracle_factory) oracle = oracle_factory();
        SimResult result = simulate(config, plan, oracle.get(), workload,
                                    protocol_factory);
        if (stats != nullptr) {
          stats->runs++;
          stats->messages_sent += result.messages_sent;
          stats->messages_dropped += result.messages_dropped;
        }
        runs.push_back(std::move(result.run));
      }
    }
  }
  return System(std::move(runs));
}

BudgetedSystem generate_system_budgeted(const SimConfig& base,
                                        std::span<const CrashPlan> plans,
                                        std::span<const InitDirective> workload,
                                        const OracleFactory& oracle_factory,
                                        const ProtocolFactory& protocol_factory,
                                        int seeds_per_plan,
                                        const Budget& budget,
                                        unsigned threads) {
  UDC_CHECK(!plans.empty(), "need at least one crash plan");
  UDC_CHECK(seeds_per_plan >= 1, "need at least one seed per plan");
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  struct Job {
    const CrashPlan* plan;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  jobs.reserve(plans.size() * static_cast<std::size_t>(seeds_per_plan));
  std::uint64_t seed = base.seed;
  for (const CrashPlan& plan : plans) {
    for (int s = 0; s < seeds_per_plan; ++s, ++seed) {
      jobs.push_back(Job{&plan, seed});
    }
  }

  // Jobs are claimed in sweep order and the budget is checked at claim time
  // (the claim index IS the number of runs claimed before it, so a max_runs
  // cap trips at the same deterministic index at every thread count).  A
  // claimed job always runs to completion — the overshoot is bounded by one
  // in-flight simulation per worker.
  struct Done {
    Run run;
    std::size_t sent;
    std::size_t dropped;
  };
  std::vector<std::optional<Done>> done(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> tripped{false};
  auto worker = [&] {
    for (;;) {
      if (tripped.load(std::memory_order_acquire)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      if (budget.runs_exhausted(i) || budget.deadline_expired()) {
        tripped.store(true, std::memory_order_release);
        return;
      }
      SimConfig config = base;
      config.seed = jobs[i].seed;
      std::unique_ptr<FdOracle> oracle;
      if (oracle_factory) oracle = oracle_factory();
      SimResult result = simulate(config, *jobs[i].plan, oracle.get(),
                                  workload, protocol_factory);
      done[i].emplace(Done{std::move(result.run), result.messages_sent,
                           result.messages_dropped});
    }
  };
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  // The partial system is the longest gap-free prefix; runs a worker
  // finished past the first gap are discarded so the result is exactly what
  // the serial unbudgeted sweep would have produced first.
  BudgetedSystem out;
  std::vector<Run> runs;
  for (auto& d : done) {
    if (!d) break;
    out.stats.runs++;
    out.stats.messages_sent += d->sent;
    out.stats.messages_dropped += d->dropped;
    runs.push_back(std::move(d->run));
  }
  out.runs_completed = runs.size();
  out.status = out.runs_completed == jobs.size() ? BudgetStatus::kComplete
                                                 : BudgetStatus::kBudgetExceeded;
  if (!runs.empty()) out.system.emplace(std::move(runs));
  return out;
}

System generate_system_parallel(const SimConfig& base,
                                std::span<const CrashPlan> plans,
                                std::span<const InitDirective> workload,
                                const OracleFactory& oracle_factory,
                                const ProtocolFactory& protocol_factory,
                                int seeds_per_plan, unsigned threads,
                                SystemStats* stats) {
  UDC_CHECK(!plans.empty(), "need at least one crash plan");
  UDC_CHECK(seeds_per_plan >= 1, "need at least one seed per plan");
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  struct Job {
    const CrashPlan* plan;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  std::uint64_t seed = base.seed;
  for (const CrashPlan& plan : plans) {
    for (int s = 0; s < seeds_per_plan; ++s, ++seed) {
      jobs.push_back(Job{&plan, seed});
    }
  }

  std::vector<Run> runs(jobs.size(), std::move(Run::Builder(base.n)).build());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> total_sent{0};
  std::atomic<std::size_t> total_dropped{0};
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      SimConfig config = base;
      config.seed = jobs[i].seed;
      std::unique_ptr<FdOracle> oracle;
      if (oracle_factory) oracle = oracle_factory();
      SimResult result = simulate(config, *jobs[i].plan, oracle.get(),
                                  workload, protocol_factory);
      total_sent += result.messages_sent;
      total_dropped += result.messages_dropped;
      runs[i] = std::move(result.run);
    }
  };
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  if (stats != nullptr) {
    stats->runs += jobs.size();
    stats->messages_sent += total_sent.load();
    stats->messages_dropped += total_dropped.load();
  }
  // The indistinguishability index rides the same worker budget; its
  // sharded build is bit-identical to the serial one (see event/system.h).
  return System(std::move(runs), threads);
}

}  // namespace udc
