#include "udc/sim/adversary.h"

#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {

namespace {

template <typename Pred>
std::optional<CrashPlan> crash_after(const SimConfig& config,
                                     std::span<const InitDirective> workload,
                                     const OracleFactory& oracle_factory,
                                     const ProtocolFactory& protocol,
                                     ProcessId victim, Time delay,
                                     const CrashPlan& base, Pred&& pred) {
  std::unique_ptr<FdOracle> oracle;
  if (oracle_factory) oracle = oracle_factory();
  SimResult recon = simulate(config, base, oracle.get(), workload, protocol);
  auto at = recon.run.first_event_time(victim, pred);
  if (!at) return std::nullopt;
  const Time strike = *at + delay;
  // The base schedule beat the adversary to it: adding a strike at or after
  // the victim's scheduled death changes nothing.
  if (base.is_faulty(victim) && *base.crash_time(victim) <= strike) {
    return std::nullopt;
  }
  // NOTE: the strike is exact only insofar as the crash does not perturb
  // events BEFORE it — which it cannot: the prefix up to the crash tick is
  // identical by determinism (the plan only differs from the recon run at
  // the crash itself).
  std::vector<std::pair<ProcessId, Time>> crashes{{victim, strike}};
  for (ProcessId p = 0; p < config.n; ++p) {
    if (p != victim && base.is_faulty(p)) {
      crashes.emplace_back(p, *base.crash_time(p));
    }
  }
  return make_crash_plan(config.n, std::move(crashes));
}

}  // namespace

std::optional<CrashPlan> crash_after_first_do(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay) {
  return crash_after_first_do(config, workload, oracle, protocol, victim,
                              delay, no_crashes(config.n));
}

std::optional<CrashPlan> crash_after_first_send(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay) {
  return crash_after_first_send(config, workload, oracle, protocol, victim,
                                delay, no_crashes(config.n));
}

std::optional<CrashPlan> crash_after_first_do(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay, const CrashPlan& base) {
  return crash_after(config, workload, oracle, protocol, victim, delay, base,
                     [](const Event& e) { return e.kind == EventKind::kDo; });
}

std::optional<CrashPlan> crash_after_first_send(
    const SimConfig& config, std::span<const InitDirective> workload,
    const OracleFactory& oracle, const ProtocolFactory& protocol,
    ProcessId victim, Time delay, const CrashPlan& base) {
  return crash_after(config, workload, oracle, protocol, victim, delay, base,
                     [](const Event& e) { return e.kind == EventKind::kSend; });
}

}  // namespace udc
