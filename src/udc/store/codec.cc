#include "udc/store/codec.h"

#include "udc/common/proc_set.h"
#include "udc/event/message.h"

namespace udc {

namespace {

// LEB128 with the standard zigzag map for signed fields: small magnitudes —
// including the ubiquitous -1 sentinels (kInvalidProcess, kInvalidAction) —
// encode in one byte.

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::uint8_t* put_varint(std::uint8_t* out, std::uint64_t v) {
  while (v >= 0x80) {
    *out++ = static_cast<std::uint8_t>(v) | 0x80u;
    v >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(v);
  return out;
}

// False on a truncated or over-long (>10 byte) field; `pos` advances only
// on success.
bool get_varint(const std::uint8_t* data, std::size_t len, std::size_t& pos,
                std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (pos >= len) return false;
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

bool get_i64(const std::uint8_t* data, std::size_t len, std::size_t& pos,
             std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!get_varint(data, len, pos, raw)) return false;
  out = unzigzag(raw);
  return true;
}

bool get_i32(const std::uint8_t* data, std::size_t len, std::size_t& pos,
             std::int32_t& out) {
  std::int64_t wide = 0;
  if (!get_i64(data, len, pos, wide)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) return false;
  out = static_cast<std::int32_t>(wide);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_record(const StoreRecord& r) {
  std::vector<std::uint8_t> out(kMaxStoreRecordBytes);
  out.resize(encode_record_into(r, out.data()));
  return out;
}

std::size_t encode_record_into(const StoreRecord& r, std::uint8_t* out) {
  std::uint8_t* w = out;
  w = put_varint(w, zigzag(r.t));
  *w++ = static_cast<std::uint8_t>(r.e.kind);
  w = put_varint(w, zigzag(r.e.peer));
  *w++ = static_cast<std::uint8_t>(r.e.msg.kind);
  w = put_varint(w, zigzag(r.e.msg.action));
  w = put_varint(w, r.e.msg.procs.bits());
  w = put_varint(w, zigzag(r.e.msg.a));
  w = put_varint(w, zigzag(r.e.msg.b));
  w = put_varint(w, zigzag(r.e.action));
  w = put_varint(w, r.e.suspects.bits());
  w = put_varint(w, zigzag(r.e.k));
  return static_cast<std::size_t>(w - out);
}

std::optional<StoreRecord> decode_record(const std::uint8_t* data,
                                         std::size_t len) {
  StoreRecord r;
  std::size_t pos = 0;
  if (!get_i64(data, len, pos, r.t)) return std::nullopt;
  if (pos >= len) return std::nullopt;
  const std::uint8_t kind = data[pos++];
  if (kind > static_cast<std::uint8_t>(EventKind::kSuspectGen)) {
    return std::nullopt;
  }
  r.e.kind = static_cast<EventKind>(kind);
  if (!get_i32(data, len, pos, r.e.peer)) return std::nullopt;
  if (pos >= len) return std::nullopt;
  const std::uint8_t msg_kind = data[pos++];
  if (msg_kind > static_cast<std::uint8_t>(MsgKind::kRejoin)) {
    return std::nullopt;
  }
  r.e.msg.kind = static_cast<MsgKind>(msg_kind);
  std::uint64_t bits = 0;
  if (!get_i64(data, len, pos, r.e.msg.action)) return std::nullopt;
  if (!get_varint(data, len, pos, bits)) return std::nullopt;
  r.e.msg.procs = ProcSet(bits);
  if (!get_i64(data, len, pos, r.e.msg.a)) return std::nullopt;
  if (!get_i64(data, len, pos, r.e.msg.b)) return std::nullopt;
  if (!get_i64(data, len, pos, r.e.action)) return std::nullopt;
  if (!get_varint(data, len, pos, bits)) return std::nullopt;
  r.e.suspects = ProcSet(bits);
  if (!get_i32(data, len, pos, r.e.k)) return std::nullopt;
  if (pos != len) return std::nullopt;  // trailing bytes
  return r;
}

}  // namespace udc
