#include "udc/store/codec.h"

#include "udc/common/proc_set.h"
#include "udc/event/message.h"

namespace udc {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_record(const StoreRecord& r) {
  std::vector<std::uint8_t> out;
  out.reserve(kStoreRecordBytes);
  put_u64(out, static_cast<std::uint64_t>(r.t));
  put_u8(out, static_cast<std::uint8_t>(r.e.kind));
  put_u32(out, static_cast<std::uint32_t>(r.e.peer));
  put_u8(out, static_cast<std::uint8_t>(r.e.msg.kind));
  put_u64(out, static_cast<std::uint64_t>(r.e.msg.action));
  put_u64(out, r.e.msg.procs.bits());
  put_u64(out, static_cast<std::uint64_t>(r.e.msg.a));
  put_u64(out, static_cast<std::uint64_t>(r.e.msg.b));
  put_u64(out, static_cast<std::uint64_t>(r.e.action));
  put_u64(out, r.e.suspects.bits());
  put_u32(out, static_cast<std::uint32_t>(r.e.k));
  return out;
}

std::optional<StoreRecord> decode_record(const std::uint8_t* data,
                                         std::size_t len) {
  if (len != kStoreRecordBytes) return std::nullopt;
  const std::uint8_t kind = data[8];
  const std::uint8_t msg_kind = data[13];
  if (kind > static_cast<std::uint8_t>(EventKind::kSuspectGen)) {
    return std::nullopt;
  }
  if (msg_kind > static_cast<std::uint8_t>(MsgKind::kRejoin)) {
    return std::nullopt;
  }
  StoreRecord r;
  r.t = static_cast<Time>(get_u64(data));
  r.e.kind = static_cast<EventKind>(kind);
  r.e.peer = static_cast<ProcessId>(static_cast<std::int32_t>(get_u32(data + 9)));
  r.e.msg.kind = static_cast<MsgKind>(msg_kind);
  r.e.msg.action = static_cast<ActionId>(get_u64(data + 14));
  r.e.msg.procs = ProcSet(get_u64(data + 22));
  r.e.msg.a = static_cast<std::int64_t>(get_u64(data + 30));
  r.e.msg.b = static_cast<std::int64_t>(get_u64(data + 38));
  r.e.action = static_cast<ActionId>(get_u64(data + 46));
  r.e.suspects = ProcSet(get_u64(data + 54));
  r.e.k = static_cast<std::int32_t>(get_u32(data + 62));
  return r;
}

}  // namespace udc
