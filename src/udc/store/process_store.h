// ProcessStore: one process's durable state — a CRC-framed WAL plus a
// periodically rotated snapshot — and the scripted storage faults that
// attack it.
//
// The live runtime's TraceRecorder doubles as each process's in-memory
// write-ahead log; a ProcessStore is that log made durable.  Every recorded
// event is appended (under the recorder's per-process shard mutex, so the
// durable order IS the recorded order); every `snapshot_every` frames the
// WAL is compacted into an atomically-replaced snapshot.  When the
// supervisor hard-kills a worker it applies any scripted StorageFault whose
// window covers the kill tick (torn write, truncate-to-synced, bit flip,
// short read, fsync failure) and then recovers: repair the WAL tail to its
// longest valid frame prefix, load snapshot + tail, re-compact, and hand the
// recovered event prefix to the restarted worker.  Anything the disk lost
// is a SUFFIX of the process's history, which the recovery protocol
// re-learns via supervisor re-inits and the kRejoin beacon (DESIGN.md §9).
//
// Durability modes (DESIGN.md §10-§11): with `group_commit` off, the inline
// FsyncPolicy decides when append() itself issues the barrier — the PR 4
// behavior, write-through, single-file.  With `group_commit` on, append()
// NEVER fsyncs; a GroupCommitter commits the batch every `commit_every`
// frames or `commit_interval`, and flush() is also forced when the process
// is sealed.  On top of that, `segment_bytes` > 0 shards the WAL into
// preallocated fixed-size segments rotated off the append path, and
// `ring_frames` > 0 stages appends in a fixed-slot ring the committer
// drains with one gathered write per batch (store/wal.h).  Staged frames
// live in user memory until the next commit, so in staged mode the loss
// window of ANY kill — plain process kill or machine-style kTruncate — is
// exactly "since the last group commit" (plus whatever the snapshot
// already made durable).
//
// Thread-safety: mu_ serializes append / rotate / kill / recover; the
// commit path holds mu_ only long enough to pin the writer, then drains
// and barriers under the WAL's own drain lock, so appends never wait out
// an fdatasync.  Lock order: WITHIN one store, mu_ before drain before
// ring; ACROSS stores, the committer holds many drain locks at once (in
// attach order) and therefore must never take any store's mu_ while it
// does — finish_commit is mutex-free by design.  flush()
// arrives on the committer's flusher thread or on seal;
// apply_kill_faults() / recover() on the supervisor thread strictly after
// the worker is joined.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/store/snapshot.h"
#include "udc/store/sync_barrier.h"
#include "udc/store/wal.h"

namespace udc {

class GroupCommitter;
class ProcessStore;

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  int fsync_every = 8;              // frames per fsync under kEveryN
  std::size_t snapshot_every = 128; // WAL frames before compaction
  // Group commit (overrides the inline fsync policy when true).
  bool group_commit = false;
  int commit_every = 32;            // kick the flusher at this many frames
  std::chrono::microseconds commit_interval{500};  // max batch staleness
  // Parallel durable-commit pipeline (PR 6).  Defaults keep the legacy
  // single-file write-through layout so the standalone store tests pin the
  // PR 4/5 semantics; the live runtime turns all of it on
  // (rt_default_store_options in rt/runtime.h).
  std::uint64_t segment_bytes = 0;  // >0: segmented WAL <wal>.seg-NNNNNN
  std::size_t ring_frames = 0;      // >0 + group_commit: staged appends
  CommitBarrier barrier = CommitBarrier::kAuto;  // committer sync engine
  int flusher_threads = 4;          // pool size for the kPool fallback
};

struct StoreCounters {
  std::size_t wal_frames_appended = 0;
  std::size_t wal_frames_replayed = 0;   // tail frames used by recoveries
  std::size_t snapshots_written = 0;
  std::size_t snapshots_loaded = 0;
  std::size_t torn_tails_truncated = 0;  // recoveries that had to repair
  std::size_t recoveries_total = 0;
  std::size_t storage_faults_injected = 0;
  std::size_t sync_failures = 0;
  std::size_t group_commits = 0;         // flushes that found pending work
};

// One store's leg of a batched commit round; see GroupCommitter::round().
// Holds the writer alive (against a concurrent recover() swap) and, while
// `wal.pending`, the writer's drain lock.
struct StoreCommitTicket {
  ProcessStore* store = nullptr;
  std::shared_ptr<WalWriter> writer;
  WalCommitTicket wal;
};

class ProcessStore {
 public:
  // `faults` are the (already sanitized) storage faults aimed at this
  // process (victim == p or kInvalidProcess).
  ProcessStore(std::string dir, ProcessId p, StoreOptions opts,
               std::vector<StorageFault> faults);
  ~ProcessStore();

  ProcessStore(const ProcessStore&) = delete;
  ProcessStore& operator=(const ProcessStore&) = delete;

  // Durably appends the event recorded at tick t.  kSyncFail windows are
  // evaluated against t; snapshot rotation happens here too.  Under group
  // commit the frame is staged or written but not fsynced; the committer
  // is kicked once commit_every frames are pending.
  void append(Time t, const Event& e);

  // Commits the unsynced WAL tail, if any: drain + serial barrier.  Called
  // on seal (flush_on_seal), at teardown, and by tests; the committer's
  // batched rounds use start_commit/finish_commit instead.
  void flush();

  // Two-phase commit for GroupCommitter::round().  start_commit pins the
  // writer and drains its staged frames; if the ticket is pending, the
  // caller must barrier ticket.wal.fds and then call finish_commit exactly
  // once.
  StoreCommitTicket start_commit();
  void finish_commit(StoreCommitTicket& t);

  // Applies every at-kill fault (torn write / truncate / bit flip) whose
  // window contains `kill_time` to the on-disk WAL, and arms short-read
  // mode for the following recover().  Must be called after the worker
  // thread is joined and before recover().
  void apply_kill_faults(Time kill_time, Rng& rng);

  // Repairs the WAL, loads snapshot + tail, re-compacts, reopens the
  // writer, and returns the recovered event prefix in tick order.
  std::vector<StoreRecord> recover();

  // Counters are read after the run quiesces (workers joined, committer
  // stopped); the snapshot is taken under the store mutex.
  StoreCounters counters() const;

  // Records guaranteed to survive ANY kill at this instant: what the
  // snapshot covers plus every WAL frame a successful barrier has covered
  // since.  recover() must return at least this many records (and at most
  // everything appended) — the "loss window is since the last group
  // commit" property, asserted by the concurrent commit tests.
  std::size_t durable_floor() const;

  std::chrono::microseconds commit_interval() const {
    return opts_.commit_interval;
  }
  void set_committer(GroupCommitter* c) { committer_ = c; }

  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  std::shared_ptr<WalWriter> make_writer() const;
  void rotate_snapshot();  // mu_ held

  std::string dir_;
  ProcessId p_;
  StoreOptions opts_;
  std::vector<StorageFault> faults_;
  GroupCommitter* committer_ = nullptr;

  mutable std::mutex mu_;
  std::shared_ptr<WalWriter> writer_;
  std::vector<StoreRecord> mirror_;  // in-memory copy, for compaction
  std::size_t frames_since_snapshot_ = 0;
  std::size_t snapshot_records_ = 0;  // records the on-disk snapshot covers
  std::size_t sync_failures_base_ = 0;  // from writers already retired
  bool short_read_armed_ = false;
  StoreCounters counters_;
  // Advanced by finish_commit WITHOUT mu_ (the committer holds other
  // stores' drain locks at that point); folded into counters() at read
  // time alongside the writer's own sync-failure count.
  std::atomic<std::size_t> group_commits_{0};
};

}  // namespace udc
