// ProcessStore: one process's durable state — a CRC-framed WAL plus a
// periodically rotated snapshot — and the scripted storage faults that
// attack it.
//
// The live runtime's TraceRecorder doubles as each process's in-memory
// write-ahead log; a ProcessStore is that log made durable.  Every recorded
// event is appended (under the recorder's per-process shard mutex, so the
// durable order IS the recorded order); every `snapshot_every` frames the
// WAL is compacted into an atomically-replaced snapshot.  When the
// supervisor hard-kills a worker it applies any scripted StorageFault whose
// window covers the kill tick (torn write, truncate-to-synced, bit flip,
// short read, fsync failure) and then recovers: repair the WAL tail to its
// longest valid frame prefix, load snapshot + tail, re-compact, and hand the
// recovered event prefix to the restarted worker.  Anything the disk lost
// is a SUFFIX of the process's history, which the recovery protocol
// re-learns via supervisor re-inits and the kRejoin beacon (DESIGN.md §9).
//
// Durability modes (DESIGN.md §10): with `group_commit` off, the inline
// FsyncPolicy decides when append() itself issues the barrier — the PR 4
// behavior.  With `group_commit` on, append() NEVER fsyncs; a GroupCommitter
// flushes the batch every `commit_every` frames or `commit_interval`, and
// flush() is also forced when the process is sealed.  The kTruncate fault's
// loss window widens from "since the last inline fsync" to "since the last
// group commit" — still a suffix, re-learned the same way.
//
// Thread-safety: every public method takes the internal mutex.  append()
// arrives on the owning worker's thread (serialized by its recorder shard),
// flush() on the group committer's flusher thread, apply_kill_faults() /
// recover() on the supervisor thread strictly after the worker is joined —
// the mutex makes the flusher-vs-supervisor and flusher-vs-worker overlaps
// safe, and fsync never runs on a closed-and-reused descriptor.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/store/snapshot.h"
#include "udc/store/wal.h"

namespace udc {

class GroupCommitter;

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  int fsync_every = 8;              // frames per fsync under kEveryN
  std::size_t snapshot_every = 128; // WAL frames before compaction
  // Group commit (overrides the inline fsync policy when true).
  bool group_commit = false;
  int commit_every = 32;            // kick the flusher at this many frames
  std::chrono::microseconds commit_interval{500};  // max batch staleness
};

struct StoreCounters {
  std::size_t wal_frames_appended = 0;
  std::size_t wal_frames_replayed = 0;   // tail frames used by recoveries
  std::size_t snapshots_written = 0;
  std::size_t snapshots_loaded = 0;
  std::size_t torn_tails_truncated = 0;  // recoveries that had to repair
  std::size_t recoveries_total = 0;
  std::size_t storage_faults_injected = 0;
  std::size_t sync_failures = 0;
  std::size_t group_commits = 0;         // flushes that synced >= 1 frame
};

class ProcessStore {
 public:
  // `faults` are the (already sanitized) storage faults aimed at this
  // process (victim == p or kInvalidProcess).
  ProcessStore(std::string dir, ProcessId p, StoreOptions opts,
               std::vector<StorageFault> faults);
  ~ProcessStore();

  ProcessStore(const ProcessStore&) = delete;
  ProcessStore& operator=(const ProcessStore&) = delete;

  // Durably appends the event recorded at tick t.  kSyncFail windows are
  // evaluated against t; snapshot rotation happens here too.  Under group
  // commit the frame is written but not fsynced; the committer is kicked
  // once commit_every frames are pending.
  void append(Time t, const Event& e);

  // Fsyncs the unsynced WAL tail, if any.  Called by the group committer's
  // flusher, by seal (flush_on_seal), and at teardown.  A no-op when the
  // writer is closed (store mid-kill) or nothing is pending.
  void flush();

  // Applies every at-kill fault (torn write / truncate / bit flip) whose
  // window contains `kill_time` to the on-disk WAL, and arms short-read
  // mode for the following recover().  Must be called after the worker
  // thread is joined and before recover().
  void apply_kill_faults(Time kill_time, Rng& rng);

  // Repairs the WAL, loads snapshot + tail, re-compacts, reopens the
  // writer, and returns the recovered event prefix in tick order.
  std::vector<StoreRecord> recover();

  // Counters are read after the run quiesces (workers joined, committer
  // stopped); the snapshot is taken under the store mutex.
  StoreCounters counters() const;

  std::chrono::microseconds commit_interval() const {
    return opts_.commit_interval;
  }
  void set_committer(GroupCommitter* c) { committer_ = c; }

  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  std::unique_ptr<WalWriter> make_writer() const;
  void rotate_snapshot();  // mu_ held
  void flush_locked();     // mu_ held

  std::string dir_;
  ProcessId p_;
  StoreOptions opts_;
  std::vector<StorageFault> faults_;
  GroupCommitter* committer_ = nullptr;

  mutable std::mutex mu_;
  std::unique_ptr<WalWriter> writer_;
  std::vector<StoreRecord> mirror_;  // in-memory copy, for compaction
  std::size_t frames_since_snapshot_ = 0;
  bool short_read_armed_ = false;
  StoreCounters counters_;
};

}  // namespace udc
