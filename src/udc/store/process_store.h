// ProcessStore: one process's durable state — a CRC-framed WAL plus a
// periodically rotated snapshot — and the scripted storage faults that
// attack it.
//
// The live runtime's TraceRecorder doubles as each process's in-memory
// write-ahead log; a ProcessStore is that log made durable.  Every recorded
// event is appended (under the recorder's mutex, so the durable order IS the
// recorded order); every `snapshot_every` frames the WAL is compacted into
// an atomically-replaced snapshot.  When the supervisor hard-kills a worker
// it applies any scripted StorageFault whose window covers the kill tick
// (torn write, truncate-to-synced, bit flip, short read, fsync failure) and
// then recovers: repair the WAL tail to its longest valid frame prefix,
// load snapshot + tail, re-compact, and hand the recovered event prefix to
// the restarted worker.  Anything the disk lost is a SUFFIX of the
// process's history, which the recovery protocol re-learns via supervisor
// re-inits and the kRejoin beacon (DESIGN.md §9).
//
// Thread-safety: append() is serialized by the recorder's mutex and only
// ever called from the owning worker's thread; apply_kill_faults()/
// recover() run on the supervisor thread strictly after that worker thread
// has been joined, so no extra locking is needed.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/store/snapshot.h"
#include "udc/store/wal.h"

namespace udc {

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  int fsync_every = 8;              // frames per fsync under kEveryN
  std::size_t snapshot_every = 128; // WAL frames before compaction
};

struct StoreCounters {
  std::size_t wal_frames_appended = 0;
  std::size_t wal_frames_replayed = 0;   // tail frames used by recoveries
  std::size_t snapshots_written = 0;
  std::size_t snapshots_loaded = 0;
  std::size_t torn_tails_truncated = 0;  // recoveries that had to repair
  std::size_t recoveries_total = 0;
  std::size_t storage_faults_injected = 0;
  std::size_t sync_failures = 0;
};

class ProcessStore {
 public:
  // `faults` are the (already sanitized) storage faults aimed at this
  // process (victim == p or kInvalidProcess).
  ProcessStore(std::string dir, ProcessId p, StoreOptions opts,
               std::vector<StorageFault> faults);
  ~ProcessStore();

  ProcessStore(const ProcessStore&) = delete;
  ProcessStore& operator=(const ProcessStore&) = delete;

  // Durably appends the event recorded at tick t.  kSyncFail windows are
  // evaluated against t; snapshot rotation happens here too.
  void append(Time t, const Event& e);

  // Applies every at-kill fault (torn write / truncate / bit flip) whose
  // window contains `kill_time` to the on-disk WAL, and arms short-read
  // mode for the following recover().  Must be called after the worker
  // thread is joined and before recover().
  void apply_kill_faults(Time kill_time, Rng& rng);

  // Repairs the WAL, loads snapshot + tail, re-compacts, reopens the
  // writer, and returns the recovered event prefix in tick order.
  std::vector<StoreRecord> recover();

  const StoreCounters& counters() const { return counters_; }

  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  void rotate_snapshot();

  std::string dir_;
  ProcessId p_;
  StoreOptions opts_;
  std::vector<StorageFault> faults_;
  std::unique_ptr<WalWriter> writer_;
  std::vector<StoreRecord> mirror_;  // in-memory copy, for compaction
  std::size_t frames_since_snapshot_ = 0;
  bool short_read_armed_ = false;
  StoreCounters counters_;
};

}  // namespace udc
