// Snapshot files: an atomically-replaced compaction of a process's durable
// event prefix.
//
// A snapshot is written to <path>.tmp, fsync'd, and rename(2)'d into place,
// so at every instant <path> is either absent, the old snapshot, or the new
// one — never a half-written hybrid.  The WAL is truncated only AFTER the
// rename lands; a crash in between leaves snapshot and WAL overlapping,
// which recovery resolves by replaying only WAL records with tick >
// snapshot.last_tick.
//
// The reader is tolerant anyway: a file that fails magic, framing, CRC, or
// count checks reads as "no snapshot" rather than throwing.  Losing a
// snapshot forgets a PREFIX of the process's history — safe, because the
// supervisor re-injects lost inits, duplicate do-events are admitted by the
// run model, and the rejoin beacon makes peers re-teach everything else
// (DESIGN.md §9).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "udc/store/codec.h"

namespace udc {

struct Snapshot {
  std::vector<StoreRecord> records;  // tick-ascending event prefix
  // Tick of the last record (0 if empty): WAL records at or below it are
  // already covered by the snapshot.
  Time last_tick() const { return records.empty() ? 0 : records.back().t; }
};

// Atomic write (tmp + fsync + rename).  Throws InvariantViolation on I/O
// failure — an unusable log directory is configuration, not a fault.
void write_snapshot_file(const std::string& path,
                         const std::vector<StoreRecord>& records);

// nullopt if the file is missing or malformed in any way.
std::optional<Snapshot> read_snapshot_file(const std::string& path);

}  // namespace udc
