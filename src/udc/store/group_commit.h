// Group commit: WAL durability amortized across appends — and, since PR 6,
// across STORES.
//
// PR 4 put an fsync (FsyncPolicy::kEveryAppend / kEveryN) INSIDE the append
// path, which — because appends run inside the recorder's critical section —
// made every worker in the system wait out each other's disk barriers.
// PR 5 moved the barrier off the append path: appends only write(), and one
// background flusher issued the fsync for a whole BATCH of frames.  But the
// flusher loop was still serial ACROSS stores — n processes' barriers
// convoyed, end to end, every round.
//
// PR 6 makes the round itself parallel.  A commit round is two-phase:
//
//   1. drain — each store's staged ring is pushed to the kernel with one
//      pwritev (cheap, microseconds), and the store's WAL hands back the
//      descriptors that need a barrier while holding its drain lock;
//   2. barrier — ALL descriptors are fdatasync'd at once through a
//      SyncBarrier engine (io_uring batch where the kernel allows it, a
//      flusher-thread pool otherwise, serial as the last resort), and only
//      then does each store advance its synced watermark and bump its
//      group-commit counters.
//
// A round fires when a store accumulates `commit_every` unsynced frames
// (the store kicks the committer early), when `commit_interval` elapses
// with any frame still unsynced (bounded staleness for quiet stores), or
// immediately on seal / teardown.  The committer honors the TRUE shortest
// attached interval — a store asking for a LONGER interval is no longer
// silently capped at 1ms — and caches it, recomputing only when the
// attachment set changes.
//
// Durability semantics are UNCHANGED in kind: what a crash can lose is
// still exactly a suffix of the process's history — "since the last group
// commit", per shard and per segment.  Recovery (repair, snapshot + tail,
// rejoin beacon, DC2' re-proof) is byte-for-byte the same machinery.
//
// Locking: the committer's own mutex guards the store list and the cached
// interval; a round holds each store's WAL drain lock from its phase-1
// drain to its phase-2 watermark update, and takes a store's main mutex
// only AFTER releasing that store's drain lock (counter updates), so
// appends never wait out a barrier and the kill path (which takes the
// store mutex, then closes the WAL under its drain lock) cannot deadlock
// against a round in flight.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "udc/store/sync_barrier.h"

namespace udc {

class ProcessStore;

struct GroupCommitOptions {
  CommitBarrier barrier = CommitBarrier::kAuto;
  int flusher_threads = 4;  // pool size when the pool engine is chosen
};

class GroupCommitter {
 public:
  GroupCommitter() : GroupCommitter(GroupCommitOptions{}) {}
  explicit GroupCommitter(GroupCommitOptions opts);
  ~GroupCommitter();  // stop()

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // Registers a store (and hands it the back-pointer it kicks on batch
  // overflow).  The store must outlive the committer or be detached by
  // stopping the committer first.
  void attach(ProcessStore* store);

  // Wakes the flusher ahead of schedule (a store hit commit_every).
  void kick();

  // Runs one synchronous commit round over every attached store.
  void flush_all();

  // Final flush_all, then joins the flusher.  Idempotent.
  void stop();

  // Which barrier engine the committer resolved to ("io_uring", "pool",
  // "serial") — diagnostics and tests.
  const char* barrier_name() const { return barrier_->name(); }

 private:
  void loop();
  void round();

  std::unique_ptr<SyncBarrier> barrier_;

  std::mutex mu_;  // guards stores_ and the cached interval
  std::vector<ProcessStore*> stores_;
  std::uint64_t attach_gen_ = 0;   // bumped by attach()
  std::uint64_t cached_gen_ = 0;   // generation the cache was computed at
  std::chrono::microseconds cached_interval_{1'000};

  std::condition_variable cv_;
  std::atomic<bool> kicked_{false};
  std::atomic<bool> stopping_{false};
  std::thread flusher_;
};

}  // namespace udc
