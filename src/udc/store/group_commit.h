// Group commit: WAL durability amortized across appends.
//
// PR 4 put an fsync (FsyncPolicy::kEveryAppend / kEveryN) INSIDE the append
// path, which — because appends run inside the recorder's critical section —
// made every worker in the system wait out each other's disk barriers.  The
// group committer moves the barrier off the append path entirely: appends
// only write() (the frame reaches the page cache and survives a process
// kill), and one background flusher thread issues the fsync for a whole
// BATCH of frames, either
//
//   * when a store accumulates `commit_every` unsynced frames (the store
//     kicks the flusher early), or
//   * when `commit_interval` elapses with any frame still unsynced
//     (bounded staleness for quiet stores), or
//   * immediately on seal (flush_on_seal): a permanent-crash record must
//     not sit in a batch, and run teardown flushes everything.
//
// Durability semantics are UNCHANGED in kind: what a machine-style crash
// (the kTruncate storage fault) can lose is still exactly a suffix of the
// process's history — the suffix window just grows from "since the last
// every-N fsync" to "since the last group commit", i.e. by at most the
// batch.  Recovery (repair, snapshot + tail, rejoin beacon, DC2' re-proof)
// is byte-for-byte the same machinery.
//
// Locking: the committer's own mutex guards only the store list; flushes
// call ProcessStore::flush(), which takes that store's internal mutex.  The
// committer NEVER holds its list mutex across a flush, and stores kick the
// flusher through an atomic flag, so no lock is ever taken in both orders.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace udc {

class ProcessStore;

class GroupCommitter {
 public:
  GroupCommitter();
  ~GroupCommitter();  // stop()

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // Registers a store (and hands it the back-pointer it kicks on batch
  // overflow).  The store must outlive the committer or be detached by
  // stopping the committer first.
  void attach(ProcessStore* store);

  // Wakes the flusher ahead of schedule (a store hit commit_every).
  void kick();

  // Synchronously flushes every attached store's unsynced tail.
  void flush_all();

  // Final flush_all, then joins the flusher.  Idempotent.
  void stop();

 private:
  void loop();
  std::vector<ProcessStore*> stores_snapshot();

  std::mutex mu_;  // guards stores_ only
  std::vector<ProcessStore*> stores_;
  std::condition_variable cv_;
  std::atomic<bool> kicked_{false};
  std::atomic<bool> stopping_{false};
  std::thread flusher_;
};

}  // namespace udc
