#include "udc/store/group_commit.h"

#include <algorithm>

#include "udc/store/process_store.h"

namespace udc {

GroupCommitter::GroupCommitter() {
  flusher_ = std::thread([this] { loop(); });
}

GroupCommitter::~GroupCommitter() { stop(); }

void GroupCommitter::attach(ProcessStore* store) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stores_.push_back(store);
  }
  store->set_committer(this);
}

void GroupCommitter::kick() {
  kicked_.store(true, std::memory_order_release);
  cv_.notify_one();
}

std::vector<ProcessStore*> GroupCommitter::stores_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}

void GroupCommitter::flush_all() {
  for (ProcessStore* s : stores_snapshot()) s->flush();
}

void GroupCommitter::stop() {
  if (stopping_.exchange(true)) {
    if (flusher_.joinable()) flusher_.join();
    return;
  }
  cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  flush_all();  // nothing batched survives shutdown unsynced
}

void GroupCommitter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep until the shortest attached interval (or a kick).  The interval
    // is re-derived each round so late attaches are honored.
    std::chrono::microseconds interval{1'000};
    for (ProcessStore* s : stores_) {
      interval = std::min(interval, s->commit_interval());
    }
    cv_.wait_for(lock, interval, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             kicked_.load(std::memory_order_acquire);
    });
    kicked_.store(false, std::memory_order_release);
    if (stopping_.load(std::memory_order_acquire)) break;
    std::vector<ProcessStore*> stores = stores_;
    lock.unlock();  // never hold the list lock across an fsync
    for (ProcessStore* s : stores) s->flush();
    lock.lock();
  }
}

}  // namespace udc
