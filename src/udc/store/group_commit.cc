#include "udc/store/group_commit.h"

#include <algorithm>

#include "udc/store/process_store.h"

namespace udc {

GroupCommitter::GroupCommitter(GroupCommitOptions opts)
    : barrier_(SyncBarrier::make(opts.barrier, opts.flusher_threads)) {
  flusher_ = std::thread([this] { loop(); });
}

GroupCommitter::~GroupCommitter() { stop(); }

void GroupCommitter::attach(ProcessStore* store) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stores_.push_back(store);
    ++attach_gen_;  // invalidate the cached interval
  }
  store->set_committer(this);
  cv_.notify_one();  // re-derive the wait interval promptly
}

void GroupCommitter::kick() {
  kicked_.store(true, std::memory_order_release);
  cv_.notify_one();
}

void GroupCommitter::round() {
  std::vector<ProcessStore*> stores;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stores = stores_;
  }
  // Phase 1: drain every store's staged frames and collect the descriptors
  // that need a barrier.  Each pending store's drain lock stays held so the
  // batch the barrier covers is exactly the batch the watermark will claim.
  std::vector<StoreCommitTicket> tickets;
  std::vector<int> fds;
  tickets.reserve(stores.size());
  for (ProcessStore* s : stores) {
    StoreCommitTicket t = s->start_commit();
    if (!t.wal.pending) continue;
    fds.insert(fds.end(), t.wal.fds.begin(), t.wal.fds.end());
    tickets.push_back(std::move(t));
  }
  // Phase 2: one batched barrier for the whole round, then let every store
  // advance its watermark and counters.
  if (!fds.empty()) barrier_->sync(fds);
  for (StoreCommitTicket& t : tickets) t.store->finish_commit(t);
}

void GroupCommitter::flush_all() { round(); }

void GroupCommitter::stop() {
  if (stopping_.exchange(true)) {
    if (flusher_.joinable()) flusher_.join();
    return;
  }
  cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  flush_all();  // nothing batched survives shutdown unsynced
}

void GroupCommitter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Honor the TRUE shortest attached interval (no 1ms cap — a store
    // asking for a longer batch window gets it), recomputed only when the
    // attachment set changes.
    if (cached_gen_ != attach_gen_) {
      std::chrono::microseconds interval{1'000};  // default: no stores yet
      if (!stores_.empty()) {
        interval = stores_.front()->commit_interval();
        for (ProcessStore* s : stores_) {
          interval = std::min(interval, s->commit_interval());
        }
      }
      cached_interval_ = interval;
      cached_gen_ = attach_gen_;
    }
    cv_.wait_for(lock, cached_interval_, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             kicked_.load(std::memory_order_acquire) ||
             cached_gen_ != attach_gen_;
    });
    kicked_.store(false, std::memory_order_release);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (cached_gen_ != attach_gen_) continue;  // re-derive before flushing
    lock.unlock();  // never hold the list lock across a barrier
    round();
    lock.lock();
  }
}

}  // namespace udc
