// SyncBarrier: a batched fdatasync engine for the group committer.
//
// A commit round must barrier one descriptor per store (plus any sealed
// segments awaiting their deferred sync).  Issued serially, n stores'
// barriers convoy: each fdatasync is ~100-300µs of mostly-idle wait, so the
// round costs n of them end to end.  The engines here overlap the waits:
//
//   * kUring — one io_uring submission carrying IORING_OP_FSYNC
//     (IORING_FSYNC_DATASYNC) per fd; the kernel runs the barriers
//     concurrently and one io_uring_enter reaps them all.  Raw syscalls
//     (io_uring_setup / io_uring_enter + mmap'd rings), no liburing
//     dependency; compiled only when <linux/io_uring.h> exists (the
//     UDC_HAVE_LINUX_IO_URING CMake check) and constructed only when the
//     kernel actually grants the rings (seccomp or an old kernel fails
//     setup, not the build).
//   * kPool — a persistent pool of flusher threads; each takes fds off a
//     shared index and fdatasyncs them.  Portable fallback with the same
//     overlap, at the cost of thread wakeups.
//   * kSerial — the PR 5 behavior, one blocking fdatasync per fd.  Also
//     the degenerate pool (flusher_threads <= 1).
//
// kAuto picks the best available at construction: uring, else pool, else
// serial.  sync() is called from one committer thread at a time; an
// internal mutex makes stray concurrent callers (stop() racing a late
// flush_all) safe rather than fast.
#pragma once

#include <memory>
#include <vector>

namespace udc {

enum class CommitBarrier { kAuto, kUring, kPool, kSerial };

class SyncBarrier {
 public:
  virtual ~SyncBarrier() = default;

  // Issues a data barrier for every fd, returning when all have landed.
  // fdatasync errors are ignored (scripted sync failures are modeled ABOVE
  // this layer, by withholding fds; a real EIO here would also surface on
  // close/read during recovery).
  virtual void sync(const std::vector<int>& fds) = 0;

  virtual const char* name() const = 0;

  // Builds the requested engine, falling back kUring -> kPool -> kSerial
  // when the requested one is unavailable on this machine.
  static std::unique_ptr<SyncBarrier> make(CommitBarrier mode,
                                           int flusher_threads);
};

}  // namespace udc
