// Durable, CRC-framed, length-prefixed write-ahead log.
//
// On-disk layout: a sequence of frames
//
//   [u32le len] [u32le crc32c(len_bytes || payload)] [payload]
//
// (CRC-32C — x86 computes it in hardware; store/crc32.h dispatches and the
// torture tests pin both the check value and hardware/software agreement.)
//
// with the checksum covering the length prefix as well as the payload, so a
// corrupted length cannot silently re-frame the rest of the file.  The
// reader is TOLERANT: it scans frames until the first one that is short,
// oversized, checksum-mismatched, or undecodable, and reports everything
// before it — the longest valid frame prefix — plus whether a corrupt tail
// follows.  It never throws on corrupt input: a torn or flipped tail is a
// recoverable condition (truncate, rejoin, re-learn; DESIGN.md §9), not a
// programming error.
//
// PR 6 splits the log into two physical layouts behind one WalWriter:
//
//   * single-file (segment_bytes == 0) — the PR 4/5 layout: one file at the
//     base path, appends go straight to the fd.  All pre-existing tests and
//     the inline-fsync durability modes run here unchanged.
//   * segmented (segment_bytes > 0) — the log is a chain of fixed-capacity
//     files `<base>.seg-NNNNNN`, each preallocated at creation (so data
//     appends never grow the inode and `fdatasync` stays a data-only
//     barrier) and SEALED at rotation (ftruncate to its exact data length).
//     The reader stitches segments in sequence order; an all-zero tail is a
//     clean preallocated end, not corruption, and a mid-chain all-zero tail
//     (a seal interrupted between the last write and the ftruncate) is
//     skipped so later synced segments still count.
//
// Appends come in two flavors as well:
//
//   * write-through (ring_frames == 0) — every append issues write(2); what
//     a plain process kill leaves behind is everything appended, because
//     the page cache outlives the process.
//   * staged (ring_frames > 0, the group-commit fast path) — appends encode
//     the frame IN PLACE into a fixed-slot ring buffer (zero heap
//     allocations, no syscall) and the group committer drains the ring with
//     one pwritev(2) per batch.  Staged-but-undrained frames live only in
//     user memory, so the loss window of ANY kill — plain process kill or
//     machine-style kTruncate — is "since the last group commit".
//
// The writer tracks the append/drain/sync ladder in frames and bytes:
// appended (logical, includes staged) >= written (handed to the OS) >=
// synced (covered by a successful barrier).  The written/synced gap is what
// a scripted machine-crash kTruncate fault deletes; the appended/written
// gap is what staging risks between commits.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "udc/store/codec.h"

namespace udc {

enum class FsyncPolicy {
  kNever,        // never fsync: a machine crash may lose the entire WAL
  kEveryAppend,  // fsync after every frame: nothing unsynced, slowest
  kEveryN,       // fsync every sync_every frames: bounded unsynced tail
};

// Upper bound on one framed record (8-byte header + the codec's worst
// case).  Frames are variable-length on disk — the varint codec makes a
// typical one a third of this — but the staging ring still uses fixed
// slots of this stride, trading a little idle RAM for an indexable ring.
inline constexpr std::size_t kMaxWalFrameBytes = 8 + kMaxStoreRecordBytes;

// Builds one frame around `payload`.
std::vector<std::uint8_t> wal_frame(const std::vector<std::uint8_t>& payload);

// Zero-allocation framing: writes the 8-byte header + payload into `out`,
// which must have room for `len + 8` bytes.
void wal_frame_into(const std::uint8_t* payload, std::uint32_t len,
                    std::uint8_t* out);

struct WalReadResult {
  std::vector<StoreRecord> records;  // decoded longest valid prefix
  std::uint64_t valid_bytes = 0;     // byte length of that prefix
  std::uint64_t file_bytes = 0;      // actual file size (0 if missing)
  bool tail_corrupt = false;         // any bytes (even zeros) past the prefix
  bool tail_nonzero = false;         // a NONZERO byte past the prefix —
                                     // distinguishes real corruption from a
                                     // preallocated segment's zero tail
};

// Tolerant streaming scan of one WAL file (no whole-file slurp: frames are
// parsed out of a bounded carry buffer as chunks arrive).  A missing file
// reads as empty.  `max_read_chunk` > 0 caps the bytes returned per read(2)
// call, exercising the partial-read loop (the kShortRead storage fault).
WalReadResult read_wal_file(const std::string& path,
                            std::size_t max_read_chunk = 0);

// Truncates `path` to its longest valid frame prefix.  Returns true if
// anything was cut.  Missing file is a no-op.
bool repair_wal_file(const std::string& path);

// Segmented layout helpers.  Segment files are `<base>.seg-NNNNNN` with a
// zero-padded decimal sequence number; the chain is read in sequence order
// and must be consecutive (a missing middle segment ends the valid prefix).
std::string wal_segment_path(const std::string& base, unsigned seq);

// Existing segment files for `base`, sorted by sequence number.
std::vector<std::pair<unsigned, std::string>> list_wal_segments(
    const std::string& base);

// Reads a WAL regardless of layout: stitches `<base>.seg-*` files when any
// exist, else falls back to the single file at `base`.  The global valid
// prefix ends at the first invalid frame anywhere in the chain; an all-zero
// tail on the LAST segment (or on a mid-chain segment whose successor is
// intact — an interrupted seal) does not invalidate anything.
WalReadResult read_wal(const std::string& base, std::size_t max_read_chunk = 0);

// Repairs a WAL regardless of layout: truncates the first segment with junk
// past its valid prefix and deletes every later segment (their content is
// past the global prefix by construction).  Returns true iff NONZERO bytes
// were cut — a preallocated zero tail is trimmed silently, so recovery
// counters only tick for real torn/corrupt tails.
bool repair_wal(const std::string& base);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kNever;
  int sync_every = 8;               // frames per barrier under kEveryN
  std::uint64_t segment_bytes = 0;  // >0: segmented layout, else single file
  std::size_t ring_frames = 0;      // >0: staged appends through a slot ring
  bool preallocate = true;          // segmented only: fallocate at creation
};

class SyncBarrier;

// Move-only handle for a two-phase group commit round.  start_commit()
// drains the ring (one pwritev per batch) and hands back the fds that still
// need a durability barrier while HOLDING the writer's drain lock, so the
// group committer can batch the fdatasyncs of many stores into one
// io_uring submission (or one thread-pool round) and only then let each
// writer advance its synced watermark via finish_commit().
struct WalCommitTicket {
  std::unique_lock<std::mutex> lock;  // the writer's drain mutex
  std::vector<int> fds;               // need fdatasync (empty if failing)
  bool pending = false;               // there was staged or unsynced work
  bool sync_failing = false;          // scripted kSyncFail window active
  std::uint64_t target_frames = 0;    // synced watermark if the barrier lands
  std::uint64_t target_bytes = 0;
};

class WalWriter {
 public:
  // Opens (creating if needed) and appends at the end.  Throws
  // InvariantViolation if the log cannot be opened — an unusable log
  // directory is a configuration error, not a scripted fault.
  WalWriter(std::string path, WalOptions opts);
  // Legacy single-file write-through signature (the PR 4/5 constructor).
  WalWriter(std::string path, FsyncPolicy policy, int sync_every);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record and returns the number of frames not yet covered by
  // a successful barrier (same value as unsynced_frames(), computed without
  // extra atomic traffic — callers use it as the group-commit kick signal).
  // At most ONE thread may append at a time (ProcessStore's mutex provides
  // this); appends may overlap freely with commit/start_commit/drain, but
  // not with truncate_all() or close().
  std::uint64_t append(const StoreRecord& r);

  // Drain + policy-independent barrier for everything appended.  Returns
  // true iff there was pending (staged or unsynced) work.  A no-op barrier
  // (counted in sync_failures) while a scripted kSyncFail window is active.
  bool commit();
  void sync() { commit(); }  // legacy name

  // Two-phase commit for the batched group-commit round; see
  // WalCommitTicket.  finish_commit must be called exactly once per ticket
  // with pending == true.
  WalCommitTicket start_commit();
  void finish_commit(WalCommitTicket& t);

  void set_sync_failing(bool failing) {
    sync_failing_.store(failing, std::memory_order_relaxed);
  }

  // Snapshot rotation: empty the log (the snapshot now covers its content).
  // Discards staged frames, deletes every segment, restarts at sequence 0.
  void truncate_all();

  std::uint64_t bytes_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_synced() const {
    return synced_.load(std::memory_order_relaxed);
  }
  std::size_t frames_appended() const {
    return appended_frames_.load(std::memory_order_relaxed);
  }
  // Frames covered by a successful barrier since the last truncate_all —
  // with the records covered by the owning store's snapshot, this is the
  // store's durable floor.
  std::uint64_t frames_synced() const {
    return synced_frames_.load(std::memory_order_relaxed);
  }
  std::size_t sync_failures() const {
    return sync_failures_.load(std::memory_order_relaxed);
  }
  // Frames appended (staged or written) but not yet covered by a
  // successful barrier — what a group committer looks at to decide whether
  // a batch is due, and what a machine-style crash at this instant loses.
  int unsynced_frames() const {
    return static_cast<int>(
        appended_frames_.load(std::memory_order_relaxed) -
        synced_frames_cum_.load(std::memory_order_relaxed));
  }
  bool is_open() const { return open_.load(std::memory_order_relaxed); }

  // Closes all descriptors.  Staged-but-undrained frames are DISCARDED —
  // this is the process-kill point, and under staging the ring dies with
  // the process.  Metadata (segment table, watermarks) survives for the
  // fault-injection methods below.
  void close();

  // Scripted storage faults, applied to the on-disk files after close()
  // the way a crashed machine or bad disk would — from the outside.
  // Appends `len` raw bytes at the end of the live data (used to fabricate
  // a torn frame).
  void inject_torn_write(const std::uint8_t* bytes, std::size_t len);
  // Machine-crash semantics: every byte past the synced watermark is gone.
  // Returns true iff any on-disk byte was cut.
  bool inject_truncate_to_synced();
  // Flips one byte at the given offset into the live data (global across
  // segments).  Returns true iff a byte was flipped.
  bool inject_bit_flip(std::uint64_t offset);

 private:
  struct Segment {
    std::string path;
    std::uint64_t start = 0;  // global byte offset of this segment's data
    std::uint64_t data = 0;   // live data bytes in this segment
  };

  void open_fresh_tail_locked();  // drain_mu_ held
  void open_next_segment_locked();
  void seal_active_locked();
  // Writes `frames` ring slots starting at monotonic slot counter `from`
  // to the active segment, rotating as capacity runs out.  drain_mu_ held.
  void write_ring_frames_locked(std::uint64_t from, std::uint64_t frames);
  void drain_locked();   // drain_mu_ held
  bool commit_locked();  // drain_mu_ held, ring already drained
  std::uint8_t* ring_slot(std::uint64_t i) {
    // ring_frames is checked to be a power of two at construction, so the
    // wrap is a mask, not a division — this sits on the per-append path.
    return ring_.data() + (i & ring_mask_) * kMaxWalFrameBytes;
  }

  std::string path_;
  WalOptions opts_;

  // Lock order: an external ProcessStore mutex, then drain_mu_.  The
  // staging ring is single-producer/single-consumer: appends (serialized
  // by the owner's mutex) publish slots with a release store of ring_tail_
  // and take NO lock at all on the fast path; the drain side (always under
  // drain_mu_) consumes [ring_head_, ring_tail_) and publishes ring_head_.
  // So an append never waits out a pwritev or an fdatasync — a full ring
  // is the only backpressure, and then the appender becomes the consumer
  // by taking drain_mu_ itself.  truncate_all()/close() reset the ring and
  // therefore must not race appends (the owning store's mutex guarantees
  // it; standalone users get the same rule documented on append()).
  std::mutex drain_mu_;

  // Segment table (single-file mode uses one never-sealed entry).  Guarded
  // by drain_mu_.
  std::vector<Segment> segs_;
  unsigned next_seq_ = 0;
  int fd_ = -1;                     // active tail fd
  std::vector<int> sealed_unsynced_;  // sealed fds awaiting their barrier

  // Staging ring: fixed kMaxWalFrameBytes slots holding variable-length
  // frames, SPSC (see lock order above).  head/tail are monotonic slot
  // counters; the slot index is the counter masked by the power-of-two
  // capacity.  scratch_ is the drain's packing buffer: slots are padded,
  // the disk image is not, so the drain compacts frames before writing.
  std::vector<std::uint8_t> ring_;
  std::vector<std::uint8_t> scratch_;  // drain packing buffer (drain_mu_)
  std::size_t ring_mask_ = 0;  // ring_frames - 1 (power-of-two capacity)
  std::atomic<std::uint64_t> ring_head_{0};  // next slot to drain
  std::atomic<std::uint64_t> ring_tail_{0};  // next slot to fill

  std::atomic<bool> open_{false};
  std::atomic<bool> sync_failing_{false};
  std::atomic<std::uint64_t> written_{0};  // on-disk bytes since truncate
  std::atomic<std::uint64_t> synced_{0};   // barrier-covered bytes, ditto
  std::atomic<std::uint64_t> appended_frames_{0};    // cumulative appends
  std::atomic<std::uint64_t> written_frames_{0};     // since truncate
  std::atomic<std::uint64_t> synced_frames_{0};      // since truncate
  std::atomic<std::uint64_t> synced_frames_cum_{0};  // cumulative ledger
  std::atomic<std::uint64_t> sync_failures_{0};
};

}  // namespace udc
