// Durable, CRC32-framed, length-prefixed write-ahead log.
//
// On-disk layout: a sequence of frames
//
//   [u32le len] [u32le crc32(len_bytes || payload)] [payload]
//
// with the checksum covering the length prefix as well as the payload, so a
// corrupted length cannot silently re-frame the rest of the file.  The
// reader is TOLERANT: it scans frames until the first one that is short,
// oversized, checksum-mismatched, or undecodable, and reports everything
// before it — the longest valid frame prefix — plus whether a corrupt tail
// follows.  It never throws on corrupt input: a torn or flipped tail is a
// recoverable condition (truncate, rejoin, re-learn; DESIGN.md §9), not a
// programming error.
//
// The writer tracks two sizes: bytes_written (everything handed to the OS;
// what a plain process kill leaves behind, since the page cache outlives
// the process) and bytes_synced (the fsync'd prefix; what a scripted
// machine-crash-style kTruncate fault preserves).  That gap is exactly the
// durability cost of FsyncPolicy::kNever vs kEveryAppend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "udc/store/codec.h"

namespace udc {

enum class FsyncPolicy {
  kNever,        // never fsync: a machine crash may lose the entire WAL
  kEveryAppend,  // fsync after every frame: nothing unsynced, slowest
  kEveryN,       // fsync every sync_every frames: bounded unsynced tail
};

// Builds one frame around `payload`.
std::vector<std::uint8_t> wal_frame(const std::vector<std::uint8_t>& payload);

struct WalReadResult {
  std::vector<StoreRecord> records;  // decoded longest valid prefix
  std::uint64_t valid_bytes = 0;     // byte length of that prefix
  std::uint64_t file_bytes = 0;      // actual file size (0 if missing)
  bool tail_corrupt = false;         // file_bytes > valid_bytes
};

// Tolerant scan of a WAL file.  A missing file reads as empty.
// `max_read_chunk` > 0 caps the bytes returned per read(2) call, exercising
// the partial-read loop (the kShortRead storage fault).
WalReadResult read_wal_file(const std::string& path,
                            std::size_t max_read_chunk = 0);

// Truncates `path` to its longest valid frame prefix.  Returns true if
// anything was cut.  Missing file is a no-op.
bool repair_wal_file(const std::string& path);

class WalWriter {
 public:
  // Opens (creating if needed) and appends at the end.  Throws
  // InvariantViolation if the file cannot be opened — an unusable log
  // directory is a configuration error, not a scripted fault.
  WalWriter(std::string path, FsyncPolicy policy, int sync_every);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append(const StoreRecord& r);
  // Policy-independent fsync of everything written.  A no-op (counted in
  // sync_failures) while a scripted kSyncFail window is active.
  void sync();
  void set_sync_failing(bool failing) { sync_failing_ = failing; }

  // Snapshot rotation: empty the log (the snapshot now covers its content).
  void truncate_all();

  std::uint64_t bytes_written() const { return size_; }
  std::uint64_t bytes_synced() const { return synced_; }
  std::size_t frames_appended() const { return frames_; }
  std::size_t sync_failures() const { return sync_failures_; }
  // Frames written but not yet covered by an fsync — what a group committer
  // looks at to decide whether a batch is due.
  int unsynced_frames() const { return unsynced_frames_; }
  bool is_open() const { return fd_ >= 0; }

  void close();

 private:
  std::string path_;
  FsyncPolicy policy_;
  int sync_every_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::uint64_t synced_ = 0;
  std::size_t frames_ = 0;
  int unsynced_frames_ = 0;
  bool sync_failing_ = false;
  std::size_t sync_failures_ = 0;
};

}  // namespace udc
