#include "udc/store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "udc/common/check.h"
#include "udc/store/crc32.h"

namespace udc {

namespace {

// Store records encode well under this, but the format allows any payload
// up to this bound; a corrupted length field beyond it is rejected without
// attempting a giant allocation.
constexpr std::uint32_t kMaxFramePayload = 1u << 16;
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

std::uint32_t frame_crc(std::uint32_t len, const std::uint8_t* payload) {
  std::uint8_t len_bytes[4];
  for (int i = 0; i < 4; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  std::uint32_t c = crc32c(len_bytes, sizeof(len_bytes));
  return crc32c(payload, len, c);
}

void pwrite_all(int fd, const std::uint8_t* data, std::size_t len, off_t off,
                const std::string& path) {
  while (len > 0) {
    ssize_t put = ::pwrite(fd, data, len, off);
    if (put < 0) {
      if (errno == EINTR) continue;
      UDC_CHECK(false, "WAL write failed: " + path);
    }
    data += put;
    off += put;
    len -= static_cast<std::size_t>(put);
  }
}

int datasync_fd(int fd) {
#if defined(__APPLE__)
  return ::fsync(fd);
#else
  return ::fdatasync(fd);
#endif
}

void preallocate_fd(int fd, std::uint64_t bytes) {
  // Keeping the inode size constant is the whole point: appends into the
  // preallocated region never dirty size metadata, so fdatasync stays a
  // data-only barrier.  Best effort — a filesystem without fallocate just
  // grows the file normally (ftruncate at least pins the size).
#if defined(__linux__)
  if (::fallocate(fd, 0, 0, static_cast<off_t>(bytes)) == 0) return;
#endif
  (void)::ftruncate(fd, static_cast<off_t>(bytes));
}

}  // namespace

void wal_frame_into(const std::uint8_t* payload, std::uint32_t len,
                    std::uint8_t* out) {
  UDC_CHECK(len > 0 && len <= kMaxFramePayload,
            "WAL frame payload out of range");
  const std::uint32_t crc = frame_crc(len, payload);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(len >> (8 * i));
    out[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  // Callers encoding in place pass payload == out + 8 already.
  if (payload != out + kFrameHeader) {
    std::memcpy(out + kFrameHeader, payload, len);
  }
}

std::vector<std::uint8_t> wal_frame(const std::vector<std::uint8_t>& payload) {
  UDC_CHECK(!payload.empty() && payload.size() <= kMaxFramePayload,
            "WAL frame payload out of range");
  std::vector<std::uint8_t> out(kFrameHeader + payload.size());
  wal_frame_into(payload.data(), static_cast<std::uint32_t>(payload.size()),
                 out.data());
  return out;
}

WalReadResult read_wal_file(const std::string& path,
                            std::size_t max_read_chunk) {
  WalReadResult res;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return res;  // missing == empty
  const std::size_t chunk = max_read_chunk > 0 ? max_read_chunk : 65'536;
  std::vector<std::uint8_t> rd(chunk);
  std::vector<std::uint8_t> carry;  // unparsed bytes, bounded by one frame
  bool scanning = true;             // still extending the valid prefix
  for (;;) {
    ssize_t got = ::read(fd, rd.data(), chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // unreadable tail: treat what we have as the file
    }
    if (got == 0) break;
    res.file_bytes += static_cast<std::uint64_t>(got);
    if (!scanning) {
      // Past the prefix already: only scanning for a nonzero junk byte.
      if (!res.tail_nonzero) {
        for (ssize_t i = 0; i < got; ++i) {
          if (rd[static_cast<std::size_t>(i)] != 0) {
            res.tail_nonzero = true;
            break;
          }
        }
      }
      continue;
    }
    carry.insert(carry.end(), rd.begin(), rd.begin() + got);
    std::size_t pos = 0;
    while (carry.size() - pos >= kFrameHeader) {
      const std::uint8_t* p = carry.data() + pos;
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        crc |= static_cast<std::uint32_t>(p[4 + i]) << (8 * i);
      }
      if (len == 0 || len > kMaxFramePayload) {
        scanning = false;
        break;
      }
      if (carry.size() - pos - kFrameHeader < len) break;  // need more bytes
      if (frame_crc(len, p + kFrameHeader) != crc) {  // flipped bits
        scanning = false;
        break;
      }
      auto rec = decode_record(p + kFrameHeader, len);
      if (!rec) {  // checksum-valid but not a record we wrote
        scanning = false;
        break;
      }
      res.records.push_back(*rec);
      pos += kFrameHeader + len;
      res.valid_bytes += kFrameHeader + len;
    }
    carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(pos));
    if (!scanning) {
      for (std::uint8_t b : carry) {
        if (b != 0) {
          res.tail_nonzero = true;
          break;
        }
      }
      carry.clear();
    }
  }
  ::close(fd);
  if (scanning && !carry.empty()) {  // torn final frame
    for (std::uint8_t b : carry) {
      if (b != 0) {
        res.tail_nonzero = true;
        break;
      }
    }
  }
  res.tail_corrupt = res.file_bytes > res.valid_bytes;
  return res;
}

bool repair_wal_file(const std::string& path) {
  WalReadResult res = read_wal_file(path);
  if (!res.tail_corrupt) return false;
  UDC_CHECK(::truncate(path.c_str(),
                       static_cast<off_t>(res.valid_bytes)) == 0,
            "WAL repair truncate failed: " + path);
  return true;
}

std::string wal_segment_path(const std::string& base, unsigned seq) {
  char suffix[24];
  std::snprintf(suffix, sizeof(suffix), ".seg-%06u", seq);
  return base + suffix;
}

std::vector<std::pair<unsigned, std::string>> list_wal_segments(
    const std::string& base) {
  std::vector<std::pair<unsigned, std::string>> out;
  const std::filesystem::path base_path(base);
  const std::string prefix = base_path.filename().string() + ".seg-";
  std::filesystem::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  for (const auto& ent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(static_cast<unsigned>(std::stoul(digits)),
                     ent.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

WalReadResult read_wal(const std::string& base, std::size_t max_read_chunk) {
  const auto segs = list_wal_segments(base);
  if (segs.empty()) return read_wal_file(base, max_read_chunk);
  WalReadResult out;
  bool stopped = false;
  unsigned expect = segs.front().first;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& [seq, path] = segs[i];
    const bool last = (i + 1 == segs.size());
    if (stopped || seq != expect) {
      // Past the global prefix (corruption upstream, or a hole in the
      // chain): whatever lives here is junk.
      stopped = true;
      WalReadResult r = read_wal_file(path, max_read_chunk);
      out.file_bytes += r.file_bytes;
      if (r.file_bytes > 0) {
        out.tail_corrupt = true;
        if (r.valid_bytes > 0 || r.tail_nonzero) out.tail_nonzero = true;
      }
      continue;
    }
    ++expect;
    WalReadResult r = read_wal_file(path, max_read_chunk);
    out.records.insert(out.records.end(), r.records.begin(), r.records.end());
    out.valid_bytes += r.valid_bytes;
    out.file_bytes += r.file_bytes;
    if (r.tail_nonzero) {
      // Real junk: the global prefix ends inside this segment.
      stopped = true;
      out.tail_corrupt = true;
      out.tail_nonzero = true;
    } else if (r.tail_corrupt) {
      // All-zero tail: the preallocated end of the active segment, or a
      // seal interrupted between its last write and its ftruncate.  Either
      // way the zeros carry no frames — keep stitching so synced data in
      // later segments still counts.
      out.tail_corrupt = true;
      (void)last;
    }
  }
  return out;
}

bool repair_wal(const std::string& base) {
  const auto segs = list_wal_segments(base);
  if (segs.empty()) return repair_wal_file(base);
  bool cut_nonzero = false;
  bool kill_rest = false;
  unsigned expect = segs.front().first;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& [seq, path] = segs[i];
    if (kill_rest || seq != expect) {
      WalReadResult r = read_wal_file(path);
      if (r.valid_bytes > 0 || r.tail_nonzero) cut_nonzero = true;
      std::error_code ec;
      std::filesystem::remove(path, ec);
      kill_rest = true;
      continue;
    }
    ++expect;
    WalReadResult r = read_wal_file(path);
    if (r.tail_nonzero) {
      UDC_CHECK(::truncate(path.c_str(),
                           static_cast<off_t>(r.valid_bytes)) == 0,
                "WAL repair truncate failed: " + path);
      cut_nonzero = true;
      kill_rest = true;  // everything after is past the global prefix
    } else if (r.tail_corrupt) {
      // Zero tail (preallocation / interrupted seal): trim silently so the
      // next incarnation sees exact sizes, but this is not a torn tail.
      UDC_CHECK(::truncate(path.c_str(),
                           static_cast<off_t>(r.valid_bytes)) == 0,
                "WAL repair truncate failed: " + path);
    }
  }
  return cut_nonzero;
}

WalWriter::WalWriter(std::string path, WalOptions opts)
    : path_(std::move(path)), opts_(opts) {
  UDC_CHECK(opts_.fsync != FsyncPolicy::kEveryN || opts_.sync_every >= 1,
            "WalWriter: kEveryN needs sync_every >= 1");
  UDC_CHECK(opts_.segment_bytes == 0 ||
                opts_.segment_bytes >= kMaxWalFrameBytes,
            "WalWriter: segment_bytes must hold at least one frame");
  UDC_CHECK(opts_.ring_frames == 0 || opts_.fsync == FsyncPolicy::kNever,
            "WalWriter: staged appends need an external commit driver");
  UDC_CHECK((opts_.ring_frames & (opts_.ring_frames - 1)) == 0,
            "WalWriter: ring_frames must be a power of two");
  if (opts_.ring_frames > 0) {
    ring_.resize(opts_.ring_frames * kMaxWalFrameBytes);
    scratch_.reserve(opts_.ring_frames * kMaxWalFrameBytes);
    ring_mask_ = opts_.ring_frames - 1;
  }

  std::lock_guard<std::mutex> dl(drain_mu_);
  if (opts_.segment_bytes == 0) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    UDC_CHECK(fd_ >= 0, "WalWriter: cannot open " + path_);
    struct stat st {};
    UDC_CHECK(::fstat(fd_, &st) == 0, "WalWriter: cannot stat " + path_);
    segs_.push_back({path_, 0, static_cast<std::uint64_t>(st.st_size)});
  } else {
    const auto existing = list_wal_segments(path_);
    std::uint64_t total = 0;
    for (const auto& [seq, spath] : existing) {
      // Reopening an intact chain (recovery truncates before reuse, so a
      // zero tail here is at worst preallocation): live data is the valid
      // frame prefix.
      WalReadResult r = read_wal_file(spath);
      segs_.push_back({spath, total, r.valid_bytes});
      total += r.valid_bytes;
      next_seq_ = seq + 1;
    }
    if (segs_.empty()) {
      open_fresh_tail_locked();
    } else {
      fd_ = ::open(segs_.back().path.c_str(), O_RDWR | O_CLOEXEC);
      UDC_CHECK(fd_ >= 0, "WalWriter: cannot open " + segs_.back().path);
    }
  }
  // Reopened after recovery: everything already on disk counts as synced
  // (recovery fsyncs what it keeps).
  const std::uint64_t on_disk = segs_.empty() ? 0 : segs_.back().start +
                                                        segs_.back().data;
  written_.store(on_disk, std::memory_order_relaxed);
  synced_.store(on_disk, std::memory_order_relaxed);
  open_.store(true, std::memory_order_relaxed);
}

WalWriter::WalWriter(std::string path, FsyncPolicy policy, int sync_every)
    : WalWriter(std::move(path), WalOptions{policy, sync_every, 0, 0, false}) {}

WalWriter::~WalWriter() { close(); }

void WalWriter::open_fresh_tail_locked() { open_next_segment_locked(); }

void WalWriter::open_next_segment_locked() {
  const std::string spath = wal_segment_path(path_, next_seq_);
  int fd = ::open(spath.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  UDC_CHECK(fd >= 0, "WalWriter: cannot open " + spath);
  if (opts_.preallocate) preallocate_fd(fd, opts_.segment_bytes);
  segs_.push_back({spath, written_.load(std::memory_order_relaxed), 0});
  ++next_seq_;
  fd_ = fd;
}

void WalWriter::seal_active_locked() {
  Segment& s = segs_.back();
  if (opts_.preallocate) {
    // Cut the preallocated zero tail so the sealed file's size IS its data
    // length; the deferred fdatasync below makes both durable at once.
    (void)::ftruncate(fd_, static_cast<off_t>(s.data));
  }
  sealed_unsynced_.push_back(fd_);
  fd_ = -1;
}

void WalWriter::write_ring_frames_locked(std::uint64_t from,
                                         std::uint64_t frames) {
  // Slots are padded to a fixed stride but the disk image is packed, so
  // the drain compacts each segment's worth of frames into scratch_ and
  // hands it to the kernel as one pwrite.  The memcpy is cheap — frames
  // average a few tens of bytes — and buys back its cost many times over
  // in fdatasync writeback, which is priced per dirty byte.
  scratch_.clear();
  std::uint64_t batch_frames = 0;
  auto flush_batch = [&] {
    if (scratch_.empty()) return;
    Segment& s = segs_.back();
    pwrite_all(fd_, scratch_.data(), scratch_.size(),
               static_cast<off_t>(s.data), s.path);
    s.data += scratch_.size();
    written_.fetch_add(scratch_.size(), std::memory_order_relaxed);
    written_frames_.fetch_add(batch_frames, std::memory_order_relaxed);
    scratch_.clear();
    batch_frames = 0;
  };
  for (std::uint64_t i = from; i != from + frames; ++i) {
    const std::uint8_t* slot = ring_slot(i);
    std::uint32_t len = 0;
    for (int j = 0; j < 4; ++j) {
      len |= static_cast<std::uint32_t>(slot[j]) << (8 * j);
    }
    const std::size_t frame_bytes = kFrameHeader + len;
    if (opts_.segment_bytes > 0 &&
        segs_.back().data + scratch_.size() + frame_bytes >
            opts_.segment_bytes) {
      // The construction-time check segment_bytes >= kMaxWalFrameBytes
      // guarantees the fresh segment can hold this frame.
      flush_batch();
      seal_active_locked();
      open_next_segment_locked();
    }
    scratch_.insert(scratch_.end(), slot, slot + frame_bytes);
    ++batch_frames;
  }
  flush_batch();
}

void WalWriter::drain_locked() {
  // Consumer side of the SPSC ring (drain_mu_ held): acquire the producer's
  // published tail, push [head, tail) to the kernel, release the new head.
  const std::uint64_t head = ring_head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring_tail_.load(std::memory_order_acquire);
  if (head == tail) return;
  write_ring_frames_locked(head, tail - head);
  ring_head_.store(tail, std::memory_order_release);
}

std::uint64_t WalWriter::append(const StoreRecord& r) {
  UDC_CHECK(is_open(), "WalWriter: append after close");
  // Appends are externally serialized (one appender at a time), so every
  // counter below uses plain load+store instead of a lock-prefixed RMW —
  // they sit on the per-event hot path.
  if (opts_.ring_frames > 0) {
    // Staged fast path: encode straight into a free ring slot and publish
    // it with one release store — no lock, no heap allocation, no syscall.
    // A full ring makes the appender drain it itself (backpressure), which
    // can wait out a concurrent batch write but never an fdatasync.
    const std::uint64_t tail = ring_tail_.load(std::memory_order_relaxed);
    if (tail - ring_head_.load(std::memory_order_acquire) ==
        opts_.ring_frames) {
      std::lock_guard<std::mutex> dl(drain_mu_);
      drain_locked();
    }
    std::uint8_t* slot = ring_slot(tail);
    const std::size_t len = encode_record_into(r, slot + kFrameHeader);
    wal_frame_into(slot + kFrameHeader, static_cast<std::uint32_t>(len),
                   slot);
    ring_tail_.store(tail + 1, std::memory_order_release);
    const std::uint64_t appended =
        appended_frames_.load(std::memory_order_relaxed) + 1;
    appended_frames_.store(appended, std::memory_order_relaxed);
    return appended - synced_frames_cum_.load(std::memory_order_relaxed);
  }

  // Write-through path: one stack-buffered frame, one pwrite — the frame
  // reaches the page cache immediately, so a plain process kill loses
  // nothing that was appended.
  std::lock_guard<std::mutex> dl(drain_mu_);
  std::uint8_t frame[kMaxWalFrameBytes];
  const std::size_t len = encode_record_into(r, frame + kFrameHeader);
  wal_frame_into(frame + kFrameHeader, static_cast<std::uint32_t>(len),
                 frame);
  const std::size_t frame_bytes = kFrameHeader + len;
  Segment* s = &segs_.back();
  if (opts_.segment_bytes > 0 &&
      s->data + frame_bytes > opts_.segment_bytes) {
    seal_active_locked();
    open_next_segment_locked();
    s = &segs_.back();
  }
  pwrite_all(fd_, frame, frame_bytes, static_cast<off_t>(s->data), s->path);
  s->data += frame_bytes;
  written_.store(written_.load(std::memory_order_relaxed) + frame_bytes,
                 std::memory_order_relaxed);
  written_frames_.store(
      written_frames_.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  const std::uint64_t appended =
      appended_frames_.load(std::memory_order_relaxed) + 1;
  appended_frames_.store(appended, std::memory_order_relaxed);
  if (opts_.fsync == FsyncPolicy::kEveryAppend ||
      (opts_.fsync == FsyncPolicy::kEveryN &&
       unsynced_frames() >= opts_.sync_every)) {
    commit_locked();
  }
  return appended - synced_frames_cum_.load(std::memory_order_relaxed);
}

bool WalWriter::commit() {
  std::lock_guard<std::mutex> dl(drain_mu_);
  if (!is_open()) return false;
  drain_locked();
  return commit_locked();
}

bool WalWriter::commit_locked() {
  // drain_mu_ held; the staged ring (if any) has already been drained by
  // the caller, so written_ covers everything appended.
  const std::uint64_t written = written_.load(std::memory_order_relaxed);
  const bool pending = written > synced_.load(std::memory_order_relaxed) ||
                       !sealed_unsynced_.empty();
  if (!pending) return false;
  if (sync_failing_.load(std::memory_order_relaxed)) {
    // Scripted fsync failure: the kernel accepted the writes but the
    // barrier silently did nothing — the firmware-lies failure mode.
    sync_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  for (int fd : sealed_unsynced_) {
    datasync_fd(fd);
    ::close(fd);
  }
  sealed_unsynced_.clear();
  if (fd_ >= 0) datasync_fd(fd_);
  const std::uint64_t wf = written_frames_.load(std::memory_order_relaxed);
  const std::uint64_t delta = wf - synced_frames_.load(std::memory_order_relaxed);
  synced_.store(written, std::memory_order_relaxed);
  synced_frames_.store(wf, std::memory_order_relaxed);
  synced_frames_cum_.fetch_add(delta, std::memory_order_relaxed);
  return true;
}

WalCommitTicket WalWriter::start_commit() {
  WalCommitTicket t;
  t.lock = std::unique_lock<std::mutex>(drain_mu_);
  if (!is_open()) {
    t.lock.unlock();
    return t;
  }
  drain_locked();
  const std::uint64_t written = written_.load(std::memory_order_relaxed);
  t.pending = written > synced_.load(std::memory_order_relaxed) ||
              !sealed_unsynced_.empty();
  if (!t.pending) {
    t.lock.unlock();
    return t;
  }
  t.sync_failing = sync_failing_.load(std::memory_order_relaxed);
  t.target_bytes = written;
  t.target_frames = written_frames_.load(std::memory_order_relaxed);
  if (!t.sync_failing) {
    t.fds = sealed_unsynced_;
    if (fd_ >= 0) t.fds.push_back(fd_);
  }
  return t;  // drain lock stays held until finish_commit
}

void WalWriter::finish_commit(WalCommitTicket& t) {
  UDC_CHECK(t.pending && t.lock.owns_lock(),
            "WalWriter: finish_commit without a pending ticket");
  if (t.sync_failing) {
    sync_failures_.fetch_add(1, std::memory_order_relaxed);
  } else {
    for (int fd : sealed_unsynced_) ::close(fd);
    sealed_unsynced_.clear();
    const std::uint64_t delta =
        t.target_frames - synced_frames_.load(std::memory_order_relaxed);
    synced_.store(t.target_bytes, std::memory_order_relaxed);
    synced_frames_.store(t.target_frames, std::memory_order_relaxed);
    synced_frames_cum_.fetch_add(delta, std::memory_order_relaxed);
  }
  t.lock.unlock();
}

void WalWriter::truncate_all() {
  // Must not race an append (see append()); the store's mutex guarantees
  // it, so resetting the ring counters here is safe.
  std::lock_guard<std::mutex> dl(drain_mu_);
  UDC_CHECK(is_open(), "WalWriter: truncate after close");
  ring_head_.store(0, std::memory_order_relaxed);
  ring_tail_.store(0, std::memory_order_relaxed);
  if (opts_.segment_bytes == 0) {
    UDC_CHECK(::ftruncate(fd_, 0) == 0,
              "WalWriter: truncate failed: " + path_);
    segs_.back().data = 0;
  } else {
    for (int fd : sealed_unsynced_) ::close(fd);
    sealed_unsynced_.clear();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    for (const Segment& s : segs_) {
      std::error_code ec;
      std::filesystem::remove(s.path, ec);
    }
    segs_.clear();
    next_seq_ = 0;
    written_.store(0, std::memory_order_relaxed);
    open_next_segment_locked();
  }
  written_.store(0, std::memory_order_relaxed);
  synced_.store(0, std::memory_order_relaxed);
  written_frames_.store(0, std::memory_order_relaxed);
  synced_frames_.store(0, std::memory_order_relaxed);
  // Everything ever appended is now either durable via the snapshot that
  // triggered this rotation or intentionally discarded: the unsynced ledger
  // restarts empty.
  synced_frames_cum_.store(appended_frames_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void WalWriter::close() {
  std::lock_guard<std::mutex> dl(drain_mu_);
  if (!is_open()) return;
  // This is the kill point: staged frames die with the process (they were
  // never handed to the kernel), while written-but-unsynced bytes survive
  // in the page cache until a scripted kTruncate models the machine crash.
  // Like truncate_all, close() must not race an append.
  ring_head_.store(ring_tail_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  for (int fd : sealed_unsynced_) ::close(fd);
  sealed_unsynced_.clear();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  open_.store(false, std::memory_order_relaxed);
}

void WalWriter::inject_torn_write(const std::uint8_t* bytes,
                                  std::size_t len) {
  UDC_CHECK(!is_open(), "inject_torn_write on an open writer");
  UDC_CHECK(!segs_.empty(), "inject_torn_write without a segment");
  const Segment& s = segs_.back();
  int fd = ::open(s.path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  UDC_CHECK(fd >= 0, "storage fault: cannot open " + s.path);
  pwrite_all(fd, bytes, len, static_cast<off_t>(s.data), s.path);
  ::close(fd);
}

bool WalWriter::inject_truncate_to_synced() {
  UDC_CHECK(!is_open(), "inject_truncate_to_synced on an open writer");
  const std::uint64_t synced = synced_.load(std::memory_order_relaxed);
  bool cut = false;
  for (const Segment& s : segs_) {
    const std::uint64_t keep =
        synced <= s.start ? 0
        : synced >= s.start + s.data ? s.data
                                     : synced - s.start;
    if (keep < s.data) {
      UDC_CHECK(::truncate(s.path.c_str(), static_cast<off_t>(keep)) == 0,
                "storage fault: truncate failed");
      cut = true;
    }
  }
  return cut;
}

bool WalWriter::inject_bit_flip(std::uint64_t offset) {
  UDC_CHECK(!is_open(), "inject_bit_flip on an open writer");
  for (const Segment& s : segs_) {
    if (offset < s.start || offset >= s.start + s.data) continue;
    int fd = ::open(s.path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) return false;  // nothing to corrupt
    std::uint8_t b = 0;
    bool flipped = false;
    if (::pread(fd, &b, 1, static_cast<off_t>(offset - s.start)) == 1) {
      b ^= 0xFFu;
      ::pwrite(fd, &b, 1, static_cast<off_t>(offset - s.start));
      flipped = true;
    }
    ::close(fd);
    return flipped;
  }
  return false;
}

}  // namespace udc
