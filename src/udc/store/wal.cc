#include "udc/store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "udc/common/check.h"
#include "udc/store/crc32.h"

namespace udc {

namespace {

// Frames carry fixed-size records today, but the format allows any payload
// up to this bound; a corrupted length field beyond it is rejected without
// attempting a giant allocation.
constexpr std::uint32_t kMaxFramePayload = 1u << 16;
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

std::uint32_t frame_crc(std::uint32_t len, const std::uint8_t* payload) {
  std::uint8_t len_bytes[4];
  for (int i = 0; i < 4; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  std::uint32_t c = crc32(len_bytes, sizeof(len_bytes));
  return crc32(payload, len, c);
}

// Reads the whole file, honoring the scripted short-read chunk cap.
// Returns false if the file does not exist.
bool slurp(const std::string& path, std::size_t max_read_chunk,
           std::vector<std::uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const std::size_t chunk = max_read_chunk > 0 ? max_read_chunk : 65'536;
  std::vector<std::uint8_t> buf(chunk);
  for (;;) {
    ssize_t got = ::read(fd, buf.data(), buf.size());
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // unreadable tail: treat what we have as the file
    }
    if (got == 0) break;
    out->insert(out->end(), buf.begin(), buf.begin() + got);
  }
  ::close(fd);
  return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    ssize_t put = ::write(fd, data, len);
    if (put < 0) {
      if (errno == EINTR) continue;
      UDC_CHECK(false, "WAL write failed: " + path);
    }
    data += put;
    len -= static_cast<std::size_t>(put);
  }
}

}  // namespace

std::vector<std::uint8_t> wal_frame(const std::vector<std::uint8_t>& payload) {
  UDC_CHECK(!payload.empty() && payload.size() <= kMaxFramePayload,
            "WAL frame payload out of range");
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeader + payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  const std::uint32_t crc = frame_crc(len, payload.data());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

WalReadResult read_wal_file(const std::string& path,
                            std::size_t max_read_chunk) {
  WalReadResult res;
  std::vector<std::uint8_t> bytes;
  if (!slurp(path, max_read_chunk, &bytes)) return res;  // missing == empty
  res.file_bytes = bytes.size();
  std::size_t off = 0;
  while (bytes.size() - off >= kFrameHeader) {
    const std::uint8_t* p = bytes.data() + off;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
      crc |= static_cast<std::uint32_t>(p[4 + i]) << (8 * i);
    }
    if (len == 0 || len > kMaxFramePayload) break;
    if (bytes.size() - off - kFrameHeader < len) break;  // torn frame
    if (frame_crc(len, p + kFrameHeader) != crc) break;  // flipped bits
    auto rec = decode_record(p + kFrameHeader, len);
    if (!rec) break;  // checksum-valid but not a record we wrote
    res.records.push_back(*rec);
    off += kFrameHeader + len;
    res.valid_bytes = off;
  }
  res.tail_corrupt = res.file_bytes > res.valid_bytes;
  return res;
}

bool repair_wal_file(const std::string& path) {
  WalReadResult res = read_wal_file(path);
  if (!res.tail_corrupt) return false;
  UDC_CHECK(::truncate(path.c_str(),
                       static_cast<off_t>(res.valid_bytes)) == 0,
            "WAL repair truncate failed: " + path);
  return true;
}

WalWriter::WalWriter(std::string path, FsyncPolicy policy, int sync_every)
    : path_(std::move(path)), policy_(policy), sync_every_(sync_every) {
  UDC_CHECK(policy_ != FsyncPolicy::kEveryN || sync_every_ >= 1,
            "WalWriter: kEveryN needs sync_every >= 1");
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  UDC_CHECK(fd_ >= 0, "WalWriter: cannot open " + path_);
  struct stat st {};
  UDC_CHECK(::fstat(fd_, &st) == 0, "WalWriter: cannot stat " + path_);
  size_ = static_cast<std::uint64_t>(st.st_size);
  // Reopened after recovery: everything already on disk counts as synced
  // (recovery fsyncs what it keeps).
  synced_ = size_;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::append(const StoreRecord& r) {
  UDC_CHECK(fd_ >= 0, "WalWriter: append after close");
  std::vector<std::uint8_t> frame = wal_frame(encode_record(r));
  write_all(fd_, frame.data(), frame.size(), path_);
  size_ += frame.size();
  ++frames_;
  ++unsynced_frames_;
  if (policy_ == FsyncPolicy::kEveryAppend ||
      (policy_ == FsyncPolicy::kEveryN && unsynced_frames_ >= sync_every_)) {
    sync();
  }
}

void WalWriter::sync() {
  UDC_CHECK(fd_ >= 0, "WalWriter: sync after close");
  if (sync_failing_) {
    // Scripted fsync failure: the kernel accepted the write but the
    // barrier silently did nothing — the firmware-lies failure mode.
    ++sync_failures_;
    return;
  }
  ::fsync(fd_);
  synced_ = size_;
  unsynced_frames_ = 0;
}

void WalWriter::truncate_all() {
  UDC_CHECK(fd_ >= 0, "WalWriter: truncate after close");
  UDC_CHECK(::ftruncate(fd_, 0) == 0, "WalWriter: truncate failed: " + path_);
  size_ = 0;
  synced_ = 0;
  unsynced_frames_ = 0;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace udc
