#include "udc/store/sync_barrier.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>

#ifdef UDC_HAVE_LINUX_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace udc {

namespace {

void datasync_ignore_errors(int fd) {
#if defined(__APPLE__)
  (void)::fsync(fd);
#else
  (void)::fdatasync(fd);
#endif
}

class SerialBarrier : public SyncBarrier {
 public:
  void sync(const std::vector<int>& fds) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : fds) datasync_ignore_errors(fd);
  }
  const char* name() const override { return "serial"; }

 private:
  std::mutex mu_;
};

// Persistent flusher pool: workers park on a condition variable between
// rounds.  Each round's state (fd list, claim cursor, done count) lives in
// a shared_ptr so a worker that wakes late still holds ITS round's state —
// no use-after-free against the caller's vector and no cross-round index
// contamination.
class PoolBarrier : public SyncBarrier {
 public:
  explicit PoolBarrier(int threads) {
    const int n = threads < 2 ? 2 : threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }

  ~PoolBarrier() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void sync(const std::vector<int>& fds) override {
    if (fds.empty()) return;
    auto r = std::make_shared<Round>();
    r->fds = fds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_ = r;
      ++generation_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(r->m);
    r->cv.wait(lock, [&] { return r->done == r->fds.size(); });
  }

  const char* name() const override { return "pool"; }

 private:
  struct Round {
    std::vector<int> fds;
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::size_t done = 0;
    std::condition_variable cv;
  };

  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Round> r;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        r = round_;
      }
      std::size_t synced = 0;
      for (;;) {
        const std::size_t i = r->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= r->fds.size()) break;
        datasync_ignore_errors(r->fds[i]);
        ++synced;
      }
      {
        std::lock_guard<std::mutex> lock(r->m);
        r->done += synced;
        if (r->done == r->fds.size()) r->cv.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Round> round_;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

#ifdef UDC_HAVE_LINUX_IO_URING

// Minimal raw-syscall io_uring: a queue of IORING_OP_FSYNC SQEs, one
// io_uring_enter per batch.  Single-threaded use (guarded by mu_).
class UringBarrier : public SyncBarrier {
 public:
  static constexpr unsigned kEntries = 64;

  // Throws nothing: `ok()` reports whether the rings came up.
  UringBarrier() {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = static_cast<int>(
        ::syscall(__NR_io_uring_setup, kEntries, &p));
    if (ring_fd_ < 0) return;

    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
      sq_ring_bytes_ = cq_ring_bytes_;
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      teardown();
      return;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_bytes_ = 0;  // shared mapping; unmap once
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        teardown();
        return;
      }
    }
    sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      teardown();
      return;
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<unsigned>*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(cq + p.cq_off.tail);
    ok_ = true;
  }

  ~UringBarrier() override { teardown(); }

  bool ok() const { return ok_; }

  void sync(const std::vector<int>& fds) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t done = 0;
    while (done < fds.size()) {
      const auto batch = static_cast<unsigned>(
          std::min<std::size_t>(fds.size() - done, kEntries));
      unsigned tail = sq_tail_->load(std::memory_order_relaxed);
      for (unsigned i = 0; i < batch; ++i) {
        const unsigned idx = (tail + i) & sq_mask_;
        io_uring_sqe* sqe = &sqes_[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_FSYNC;
        sqe->fd = fds[done + i];
        sqe->fsync_flags = IORING_FSYNC_DATASYNC;
        sq_array_[idx] = idx;
      }
      sq_tail_->store(tail + batch, std::memory_order_release);
      unsigned reaped = 0;
      while (reaped < batch) {
        const long got = ::syscall(__NR_io_uring_enter, ring_fd_,
                                   reaped == 0 ? batch : 0u, batch - reaped,
                                   IORING_ENTER_GETEVENTS, nullptr, 0);
        if (got < 0 && errno == EINTR) continue;
        if (got < 0) break;  // degrade: leave the rest unsynced this round
        unsigned head = cq_head_->load(std::memory_order_relaxed);
        const unsigned cq_tail = cq_tail_->load(std::memory_order_acquire);
        while (head != cq_tail) {
          ++head;
          ++reaped;
        }
        cq_head_->store(head, std::memory_order_release);
      }
      done += batch;
    }
  }

  const char* name() const override { return "io_uring"; }

 private:
  void teardown() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_ && cq_ring_ != MAP_FAILED) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
    sqes_ = nullptr;
    cq_ring_ = nullptr;
    sq_ring_ = nullptr;
    ring_fd_ = -1;
    ok_ = false;
  }

  std::mutex mu_;
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqes_bytes_ = 0;
  std::atomic<unsigned>* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  std::atomic<unsigned>* cq_head_ = nullptr;
  std::atomic<unsigned>* cq_tail_ = nullptr;
  bool ok_ = false;
};

#endif  // UDC_HAVE_LINUX_IO_URING

}  // namespace

std::unique_ptr<SyncBarrier> SyncBarrier::make(CommitBarrier mode,
                                               int flusher_threads) {
#ifdef UDC_HAVE_LINUX_IO_URING
  if (mode == CommitBarrier::kAuto || mode == CommitBarrier::kUring) {
    auto uring = std::make_unique<UringBarrier>();
    if (uring->ok()) return uring;
    // Kernel or seccomp said no: fall through to the portable engines.
  }
#endif
  if (mode != CommitBarrier::kSerial && flusher_threads > 1) {
    return std::make_unique<PoolBarrier>(flusher_threads);
  }
  return std::make_unique<SerialBarrier>();
}

}  // namespace udc
