#include "udc/store/process_store.h"

#include <unistd.h>

#include <algorithm>

#include "udc/common/check.h"
#include "udc/store/codec.h"
#include "udc/store/group_commit.h"

namespace udc {

namespace {

bool window_contains(const StorageFault& f, Time t) {
  return t >= f.begin && t < f.end;
}

void datasync_fd_local(int fd) {
#if defined(__APPLE__)
  (void)::fsync(fd);
#else
  (void)::fdatasync(fd);
#endif
}

}  // namespace

ProcessStore::ProcessStore(std::string dir, ProcessId p, StoreOptions opts,
                           std::vector<StorageFault> faults)
    : dir_(std::move(dir)), p_(p), opts_(opts), faults_(std::move(faults)) {
  UDC_CHECK(!dir_.empty(), "ProcessStore: empty directory");
  UDC_CHECK(!opts_.group_commit || opts_.commit_every >= 1,
            "ProcessStore: group commit needs commit_every >= 1");
  mirror_.reserve(std::min<std::size_t>(opts_.snapshot_every * 2, 1 << 16));
  writer_ = make_writer();
}

ProcessStore::~ProcessStore() = default;

std::shared_ptr<WalWriter> ProcessStore::make_writer() const {
  // Group commit owns durability: the writer's inline policy is disabled
  // and every barrier comes from a commit round.  The staging ring is only
  // safe under group commit (inline policies must stay write-through so a
  // plain process kill keeps the page-cache tail).
  WalOptions w;
  w.fsync = opts_.group_commit ? FsyncPolicy::kNever : opts_.fsync;
  w.sync_every = opts_.fsync_every;
  w.segment_bytes = opts_.segment_bytes;
  w.ring_frames = opts_.group_commit ? opts_.ring_frames : 0;
  w.preallocate = opts_.segment_bytes > 0;
  return std::make_shared<WalWriter>(wal_path(), w);
}

std::string ProcessStore::wal_path() const {
  return dir_ + "/p" + std::to_string(p_) + ".wal";
}

std::string ProcessStore::snapshot_path() const {
  return dir_ + "/p" + std::to_string(p_) + ".snap";
}

void ProcessStore::append(Time t, const Event& e) {
  bool kick = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fault bookkeeping only when this store is actually under attack: the
    // common (and benchmarked) path skips the atomic flag write and the
    // failure-counter refresh entirely.
    if (!faults_.empty()) {
      bool sync_failing = false;
      for (const StorageFault& f : faults_) {
        if (f.kind == StorageFault::Kind::kSyncFail &&
            window_contains(f, t)) {
          sync_failing = true;
          break;
        }
      }
      writer_->set_sync_failing(sync_failing);
    }
    // emplace builds the record once, in place — the WAL encoder then reads
    // it straight out of the mirror (no temporary, no second Event copy).
    const StoreRecord& rec = mirror_.emplace_back(t, e);
    const std::uint64_t unsynced = writer_->append(rec);
    ++counters_.wal_frames_appended;
    if (++frames_since_snapshot_ >= opts_.snapshot_every) rotate_snapshot();
    kick = opts_.group_commit &&
           unsynced >= static_cast<std::uint64_t>(opts_.commit_every);
  }
  // Kick outside the store mutex: the committer's flusher takes the WAL
  // drain lock next round, and holding mu_ here would stall the worker
  // behind the batch.
  if (kick && committer_ != nullptr) committer_->kick();
}

StoreCommitTicket ProcessStore::start_commit() {
  StoreCommitTicket t;
  t.store = this;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.writer = writer_;
  }
  // The drain (ring -> pwritev) happens under the WAL's own locks, NOT
  // mu_, so appends contend only with the memcpy into the ring, never with
  // the barrier.  The shared_ptr keeps the writer alive across a
  // concurrent recover() swap; a closed writer yields a non-pending
  // ticket.
  if (t.writer == nullptr) return t;
  t.wal = t.writer->start_commit();
  return t;
}

void ProcessStore::finish_commit(StoreCommitTicket& t) {
  if (!t.wal.pending) return;
  // NO store mutex here, ever: the committer finishes a round's tickets
  // while still holding the drain locks of the round's LATER pending
  // stores, and the kill path (apply_kill_faults) holds mu_ while close()
  // waits out a drain lock — taking mu_ here would close a lock-order
  // cycle across stores.  The counters a round advances are atomics, and
  // counters() derives sync_failures from the writer directly.
  t.writer->finish_commit(t.wal);
  group_commits_.fetch_add(1, std::memory_order_relaxed);
}

void ProcessStore::flush() {
  StoreCommitTicket t = start_commit();
  if (!t.wal.pending) return;
  for (int fd : t.wal.fds) datasync_fd_local(fd);
  finish_commit(t);
}

void ProcessStore::rotate_snapshot() {
  // Snapshot first, truncate the WAL second: a crash in the gap leaves
  // snapshot and WAL overlapping, which recovery resolves by tick.  The
  // snapshot covers mirror_ — including frames still staged in the ring —
  // and write_snapshot_file fsyncs, so after rotation the durable floor is
  // the whole history so far.
  write_snapshot_file(snapshot_path(), mirror_);
  writer_->truncate_all();
  frames_since_snapshot_ = 0;
  snapshot_records_ = mirror_.size();
  ++counters_.snapshots_written;
}

void ProcessStore::apply_kill_faults(Time kill_time, Rng& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  // The writer's descriptors go away first; every fault below edits the
  // on-disk files the way a crashed machine or a bad disk would — from the
  // outside, segment by segment.  close() waits out any commit round in
  // flight (drain lock), and discards staged ring frames: frames the
  // process never handed to the kernel do not survive a kill of any kind.
  const std::uint64_t written = writer_->bytes_written();
  writer_->close();
  short_read_armed_ = false;

  for (const StorageFault& f : faults_) {
    if (!window_contains(f, kill_time)) continue;
    switch (f.kind) {
      case StorageFault::Kind::kTornWrite: {
        // The append in flight at the kill instant made it only partway:
        // fabricate a frame and write a strict prefix of it at the active
        // segment's tail.
        std::uint8_t frame[kMaxWalFrameBytes];
        const std::size_t len = encode_record_into(
            StoreRecord{kill_time, Event::crash()}, frame + 8);
        wal_frame_into(frame + 8, static_cast<std::uint32_t>(len), frame);
        const std::uint64_t cut = 1 + rng.next_below(std::uint64_t{8} + len - 1);
        writer_->inject_torn_write(frame, static_cast<std::size_t>(cut));
        ++counters_.storage_faults_injected;
        break;
      }
      case StorageFault::Kind::kTruncate:
        // Machine-crash semantics: the unsynced page-cache tail is gone.
        // This is where the durability window shows — inline kEveryAppend
        // loses nothing, kEveryN at most N-1 frames, group commit at most
        // one batch per segment.  Staged frames already died in close()
        // above, so only a write-through tail can be cut here.
        if (writer_->inject_truncate_to_synced()) {
          ++counters_.storage_faults_injected;
        }
        break;
      case StorageFault::Kind::kBitFlip:
        if (written > 0 && writer_->inject_bit_flip(rng.next_below(written))) {
          ++counters_.storage_faults_injected;
        }
        break;
      case StorageFault::Kind::kShortRead:
        short_read_armed_ = true;
        ++counters_.storage_faults_injected;
        break;
      case StorageFault::Kind::kSyncFail:
        break;  // applied at append time, not at kill time
    }
  }
}

std::vector<StoreRecord> ProcessStore::recover() {
  std::lock_guard<std::mutex> lock(mu_);
  // 1. Truncate the WAL — every segment of it — to its longest valid frame
  //    prefix.  A clean tail (including a preallocated segment's zero
  //    tail) is a no-op; a torn/flipped one is counted and cut.
  if (repair_wal(wal_path())) ++counters_.torn_tails_truncated;
  WalReadResult wal = read_wal(
      wal_path(), short_read_armed_ ? std::size_t{3} : std::size_t{0});
  short_read_armed_ = false;

  // 2. Snapshot + tail, deduplicated by tick (the snapshot-then-truncate
  //    crash window leaves overlap; ticks are globally unique).
  std::vector<StoreRecord> recovered;
  Time covered = 0;
  if (auto snap = read_snapshot_file(snapshot_path())) {
    recovered = std::move(snap->records);
    covered = recovered.empty() ? 0 : recovered.back().t;
    ++counters_.snapshots_loaded;
  }
  for (const StoreRecord& r : wal.records) {
    if (r.t > covered) {
      recovered.push_back(r);
      ++counters_.wal_frames_replayed;
    }
  }

  // 3. Re-compact: the recovered prefix becomes the new snapshot and the
  //    WAL restarts empty, so the next incarnation appends onto a durable
  //    base that an immediate second crash cannot tear.
  write_snapshot_file(snapshot_path(), recovered);
  ++counters_.snapshots_written;
  sync_failures_base_ += writer_->sync_failures();
  writer_ = make_writer();
  writer_->truncate_all();
  frames_since_snapshot_ = 0;
  snapshot_records_ = recovered.size();
  mirror_ = recovered;
  ++counters_.recoveries_total;
  return recovered;
}

StoreCounters ProcessStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreCounters c = counters_;
  // Derived live rather than cached by the paths that change them: the
  // committer's finish_commit must stay mutex-free (see there), so the
  // writer's own atomic failure count and the round counter are folded in
  // at read time.
  c.sync_failures = sync_failures_base_ + writer_->sync_failures();
  c.group_commits = group_commits_.load(std::memory_order_relaxed);
  return c;
}

std::size_t ProcessStore::durable_floor() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ == nullptr) return snapshot_records_;
  return snapshot_records_ +
         static_cast<std::size_t>(writer_->frames_synced());
}

}  // namespace udc
