#include "udc/store/process_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "udc/common/check.h"
#include "udc/store/group_commit.h"

namespace udc {

namespace {

bool window_contains(const StorageFault& f, Time t) {
  return t >= f.begin && t < f.end;
}

// Appends `len` bytes of `data` to the file at `path` (raw, unframed — used
// to fabricate a torn frame).
void raw_append(const std::string& path, const std::uint8_t* data,
                std::size_t len) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  UDC_CHECK(fd >= 0, "storage fault: cannot open " + path);
  while (len > 0) {
    ssize_t put = ::write(fd, data, len);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      UDC_CHECK(false, "storage fault: write failed: " + path);
    }
    data += put;
    len -= static_cast<std::size_t>(put);
  }
  ::close(fd);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;  // nothing to corrupt
  std::uint8_t b = 0;
  if (::pread(fd, &b, 1, static_cast<off_t>(offset)) == 1) {
    b ^= 0xFFu;
    ::pwrite(fd, &b, 1, static_cast<off_t>(offset));
  }
  ::close(fd);
}

}  // namespace

ProcessStore::ProcessStore(std::string dir, ProcessId p, StoreOptions opts,
                           std::vector<StorageFault> faults)
    : dir_(std::move(dir)), p_(p), opts_(opts), faults_(std::move(faults)) {
  UDC_CHECK(!dir_.empty(), "ProcessStore: empty directory");
  UDC_CHECK(!opts_.group_commit || opts_.commit_every >= 1,
            "ProcessStore: group commit needs commit_every >= 1");
  writer_ = make_writer();
}

ProcessStore::~ProcessStore() = default;

std::unique_ptr<WalWriter> ProcessStore::make_writer() const {
  // Group commit owns durability: the writer's inline policy is disabled
  // and every barrier comes from flush().
  return std::make_unique<WalWriter>(
      wal_path(), opts_.group_commit ? FsyncPolicy::kNever : opts_.fsync,
      opts_.fsync_every);
}

std::string ProcessStore::wal_path() const {
  return dir_ + "/p" + std::to_string(p_) + ".wal";
}

std::string ProcessStore::snapshot_path() const {
  return dir_ + "/p" + std::to_string(p_) + ".snap";
}

void ProcessStore::append(Time t, const Event& e) {
  bool kick = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool sync_failing = false;
    for (const StorageFault& f : faults_) {
      if (f.kind == StorageFault::Kind::kSyncFail && window_contains(f, t)) {
        sync_failing = true;
        break;
      }
    }
    writer_->set_sync_failing(sync_failing);
    writer_->append(StoreRecord{t, e});
    mirror_.push_back(StoreRecord{t, e});
    ++counters_.wal_frames_appended;
    if (++frames_since_snapshot_ >= opts_.snapshot_every) rotate_snapshot();
    counters_.sync_failures = writer_->sync_failures();
    kick = opts_.group_commit &&
           writer_->unsynced_frames() >= opts_.commit_every;
  }
  // Kick outside the store mutex: the committer's flusher takes it back in
  // flush(), and holding it here would stall the worker behind the batch.
  if (kick && committer_ != nullptr) committer_->kick();
}

void ProcessStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void ProcessStore::flush_locked() {
  if (writer_ == nullptr || !writer_->is_open()) return;  // mid-kill
  if (writer_->unsynced_frames() == 0 &&
      writer_->bytes_synced() >= writer_->bytes_written()) {
    return;
  }
  writer_->sync();
  counters_.sync_failures = writer_->sync_failures();
  ++counters_.group_commits;
}

void ProcessStore::rotate_snapshot() {
  // Snapshot first, truncate the WAL second: a crash in the gap leaves
  // snapshot and WAL overlapping, which recovery resolves by tick.
  write_snapshot_file(snapshot_path(), mirror_);
  writer_->truncate_all();
  frames_since_snapshot_ = 0;
  ++counters_.snapshots_written;
}

void ProcessStore::apply_kill_faults(Time kill_time, Rng& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  // The writer's fd goes away first; every fault below edits the file the
  // way a crashed machine or a bad disk would — from the outside.  The
  // store mutex keeps a concurrent group-commit flush off the descriptor.
  const std::uint64_t written = writer_->bytes_written();
  const std::uint64_t synced = writer_->bytes_synced();
  writer_->close();
  short_read_armed_ = false;

  for (const StorageFault& f : faults_) {
    if (!window_contains(f, kill_time)) continue;
    switch (f.kind) {
      case StorageFault::Kind::kTornWrite: {
        // The append in flight at the kill instant made it only partway:
        // fabricate a frame and write a strict prefix of it.
        std::vector<std::uint8_t> frame =
            wal_frame(encode_record(StoreRecord{kill_time, Event::crash()}));
        std::uint64_t cut =
            1 + rng.next_below(static_cast<std::uint64_t>(frame.size()) - 1);
        raw_append(wal_path(), frame.data(), static_cast<std::size_t>(cut));
        ++counters_.storage_faults_injected;
        break;
      }
      case StorageFault::Kind::kTruncate:
        // Machine-crash semantics: the unsynced page-cache tail is gone.
        // This is where the durability window shows — inline kEveryAppend
        // loses nothing, kEveryN at most N-1 frames, group commit at most
        // one batch.
        if (synced < written) {
          UDC_CHECK(::truncate(wal_path().c_str(),
                               static_cast<off_t>(synced)) == 0,
                    "storage fault: truncate failed");
          ++counters_.storage_faults_injected;
        }
        break;
      case StorageFault::Kind::kBitFlip:
        if (written > 0) {
          flip_byte(wal_path(), rng.next_below(written));
          ++counters_.storage_faults_injected;
        }
        break;
      case StorageFault::Kind::kShortRead:
        short_read_armed_ = true;
        ++counters_.storage_faults_injected;
        break;
      case StorageFault::Kind::kSyncFail:
        break;  // applied at append time, not at kill time
    }
  }
}

std::vector<StoreRecord> ProcessStore::recover() {
  std::lock_guard<std::mutex> lock(mu_);
  // 1. Truncate the WAL to its longest valid frame prefix.  A clean tail is
  //    a no-op; a torn/flipped one is counted and cut.
  if (repair_wal_file(wal_path())) ++counters_.torn_tails_truncated;
  WalReadResult wal = read_wal_file(
      wal_path(), short_read_armed_ ? std::size_t{3} : std::size_t{0});
  short_read_armed_ = false;

  // 2. Snapshot + tail, deduplicated by tick (the snapshot-then-truncate
  //    crash window leaves overlap; ticks are globally unique).
  std::vector<StoreRecord> recovered;
  Time covered = 0;
  if (auto snap = read_snapshot_file(snapshot_path())) {
    recovered = std::move(snap->records);
    covered = recovered.empty() ? 0 : recovered.back().t;
    ++counters_.snapshots_loaded;
  }
  for (const StoreRecord& r : wal.records) {
    if (r.t > covered) {
      recovered.push_back(r);
      ++counters_.wal_frames_replayed;
    }
  }

  // 3. Re-compact: the recovered prefix becomes the new snapshot and the
  //    WAL restarts empty, so the next incarnation appends onto a durable
  //    base that an immediate second crash cannot tear.
  write_snapshot_file(snapshot_path(), recovered);
  ++counters_.snapshots_written;
  writer_ = make_writer();
  writer_->truncate_all();
  frames_since_snapshot_ = 0;
  mirror_ = recovered;
  ++counters_.recoveries_total;
  return recovered;
}

StoreCounters ProcessStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace udc
