// Binary codec for durable (tick, event) records.
//
// An Event is a flat value (event/event.h); a record serializes as eleven
// fields in a fixed order, each a zigzag varint (signed scalars), a plain
// varint (the two ProcSet bitmasks), or a raw tag byte (the two enum
// kinds).  Most fields of most events are zero or -1, so a typical send or
// receive encodes in ~15 bytes instead of the 66 a flat little-endian
// layout costs — and on the durable path bytes are the bill: every encoded
// byte is CRC'd, copied to the page cache, and written back by fdatasync.
//
// decode_record is total — malformed input yields nullopt, never an
// exception — because the recovery path must treat a CRC-valid-but-
// nonsensical frame the same way it treats a torn one: truncate and
// re-learn, not crash.  Totality with varints rests on two checks: every
// field read fails cleanly at the buffer's end (so no strict prefix of an
// encoding ever decodes), and the eleven fields must consume exactly `len`
// bytes (so no encoding with trailing junk does either).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/event.h"

namespace udc {

struct StoreRecord {
  Time t = 0;
  Event e;

  friend bool operator==(const StoreRecord&, const StoreRecord&) = default;
};

// Worst case: five 64-bit fields at 10 varint bytes, two 32-bit fields at
// 5, two bitmask fields at 10, two tag bytes.  Sizing bound for ring slots
// and stack frames; real records come nowhere near it.
inline constexpr std::size_t kMaxStoreRecordBytes = 82;

std::vector<std::uint8_t> encode_record(const StoreRecord& r);

// Zero-allocation variant: writes at most kMaxStoreRecordBytes into `out`
// and returns the number of bytes used.  The WAL's staged append path
// encodes records straight into ring-buffer slots with this.
std::size_t encode_record_into(const StoreRecord& r, std::uint8_t* out);

// nullopt on truncated fields, trailing bytes, out-of-range enum tags, or
// 32-bit fields that decode out of range.
std::optional<StoreRecord> decode_record(const std::uint8_t* data,
                                         std::size_t len);

}  // namespace udc
