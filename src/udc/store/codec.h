// Binary codec for durable (tick, event) records.
//
// An Event is a flat value (event/event.h), so a record serializes to a
// fixed 66-byte little-endian layout with no variable-length parts.  A
// fixed layout keeps the WAL reader's corruption handling trivial: a frame
// either decodes in full or is rejected, there is no partially-parsed
// state.  decode_record is total — malformed input yields nullopt, never an
// exception — because the recovery path must treat a CRC-valid-but-
// nonsensical frame the same way it treats a torn one: truncate and
// re-learn, not crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/event.h"

namespace udc {

struct StoreRecord {
  Time t = 0;
  Event e;

  friend bool operator==(const StoreRecord&, const StoreRecord&) = default;
};

// t(8) kind(1) peer(4) msg.kind(1) msg.action(8) msg.procs(8) msg.a(8)
// msg.b(8) action(8) suspects(8) k(4)
inline constexpr std::size_t kStoreRecordBytes = 66;

std::vector<std::uint8_t> encode_record(const StoreRecord& r);

// nullopt on wrong size or out-of-range enum tags.
std::optional<StoreRecord> decode_record(const std::uint8_t* data,
                                         std::size_t len);

}  // namespace udc
