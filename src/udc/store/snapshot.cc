#include "udc/store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "udc/common/check.h"
#include "udc/store/wal.h"

namespace udc {

namespace {

constexpr char kMagic[8] = {'U', 'D', 'C', 'S', 'N', 'P', '0', '1'};

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    ssize_t put = ::write(fd, data, len);
    if (put < 0) {
      if (errno == EINTR) continue;
      UDC_CHECK(false, "snapshot write failed: " + path);
    }
    data += put;
    len -= static_cast<std::size_t>(put);
  }
}

}  // namespace

void write_snapshot_file(const std::string& path,
                         const std::vector<StoreRecord>& records) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  UDC_CHECK(fd >= 0, "snapshot: cannot open " + tmp);

  // One worst-case buffer, frames encoded in place and trimmed to the
  // packed size — no per-record heap allocation on the rotation path.
  std::vector<std::uint8_t> out(sizeof(kMagic) + 8 +
                                records.size() * kMaxWalFrameBytes);
  std::uint8_t* w = out.data();
  std::memcpy(w, kMagic, sizeof(kMagic));
  w += sizeof(kMagic);
  const auto count = static_cast<std::uint64_t>(records.size());
  for (int i = 0; i < 8; ++i) {
    *w++ = static_cast<std::uint8_t>(count >> (8 * i));
  }
  for (const StoreRecord& r : records) {
    const std::size_t len = encode_record_into(r, w + 8);
    wal_frame_into(w + 8, static_cast<std::uint32_t>(len), w);
    w += 8 + len;
  }
  out.resize(static_cast<std::size_t>(w - out.data()));
  write_all(fd, out.data(), out.size(), tmp);
  ::fsync(fd);
  ::close(fd);
  UDC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "snapshot: rename failed: " + path);
}

std::optional<Snapshot> read_snapshot_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65'536];
  for (;;) {
    ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), buf, buf + got);
  }
  ::close(fd);

  if (bytes.size() < sizeof(kMagic) + 8) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<std::uint64_t>(bytes[sizeof(kMagic) + i]) << (8 * i);
  }

  // The body reuses the WAL framing; scan it strictly here — a snapshot is
  // all-or-nothing, so any defect invalidates the whole file.
  Snapshot snap;
  std::size_t off = sizeof(kMagic) + 8;
  const std::size_t header = 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (bytes.size() - off < header) return std::nullopt;
    std::uint32_t len = 0;
    for (int j = 0; j < 4; ++j) {
      len |= static_cast<std::uint32_t>(bytes[off + j]) << (8 * j);
    }
    if (len == 0 || len > kMaxStoreRecordBytes) return std::nullopt;
    if (bytes.size() - off - header < len) return std::nullopt;
    // Re-frame in a stack buffer for the CRC check — the body reuses the
    // WAL framing byte for byte.
    std::uint8_t expect[kMaxWalFrameBytes];
    wal_frame_into(bytes.data() + off + header, len, expect);
    if (std::memcmp(expect, bytes.data() + off, header + len) != 0) {
      return std::nullopt;
    }
    auto rec = decode_record(bytes.data() + off + header, len);
    if (!rec) return std::nullopt;
    snap.records.push_back(*rec);
    off += header + len;
  }
  if (off != bytes.size()) return std::nullopt;  // trailing junk
  return snap;
}

}  // namespace udc
