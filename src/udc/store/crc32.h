// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for WAL and
// snapshot framing.
//
// The durability layer's threat model (DESIGN.md §9) is a hostile disk:
// torn writes, truncations, and bit flips injected at kill time.  CRC-32
// detects every burst error up to 32 bits — in particular every single-byte
// flip the storage fault layer can script — so a frame whose checksum
// matches is, for our fault model, exactly the frame that was appended.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace udc {

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace udc
