// CRC-32 checksums for WAL and snapshot framing.
//
// The durability layer's threat model (DESIGN.md §9) is a hostile disk:
// torn writes, truncations, and bit flips injected at kill time.  A 32-bit
// CRC detects every burst error up to 32 bits — in particular every
// single-byte flip the storage fault layer can script — so a frame whose
// checksum matches is, for our fault model, exactly the frame that was
// appended.
//
// Two polynomials live here, each pinned by a torture-test check value:
//
//   * crc32()  — CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
//     crc32("123456789") == 0xCBF43926.
//   * crc32c() — CRC-32C (Castagnoli, reflected, poly 0x82F63B78), used by
//     the WAL frame header because x86 computes it in hardware (SSE4.2
//     `crc32` instruction, ~8 bytes/cycle-chain vs ~2 bytes/cycle for the
//     table walk).  crc32c("123456789") == 0xE3069283.
//
// Software implementation for both: slicing-by-8 (Kounavis & Berry) — the
// table-0 column IS the classic one-table form, so the eight-byte loop is
// bit-identical to the byte-at-a-time reference.  crc32c() dispatches to
// the hardware instruction at runtime when the CPU has it; the WAL torture
// tests cross-check hardware against the table walk on random buffers, so a
// dispatch bug cannot silently fork the on-disk format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define UDC_CRC32C_HW_DISPATCH 1
#endif

namespace udc {

namespace crc32_detail {

struct Tables {
  std::uint32_t t[8][256];
};

// Slicing tables for a reflected polynomial: t[0] is the classic table,
// t[s][i] advances a byte through s additional zero bytes.
template <std::uint32_t kPoly>
inline const Tables& tables() {
  static const Tables tables = [] {
    Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
      }
      tb.t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tb.t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = tb.t[0][c & 0xFFu] ^ (c >> 8);
        tb.t[s][i] = c;
      }
    }
    return tb;
  }();
  return tables;
}

template <std::uint32_t kPoly>
inline std::uint32_t crc_sliced(const void* data, std::size_t len,
                                std::uint32_t seed) {
  const auto& tb = tables<kPoly>().t;
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 8) {
    // One 8-byte slice per iteration.  The unaligned loads are spelled as
    // memcpy (compiles to plain loads on every target we build for); the
    // low word folds through tables 7..4, the high word through 3..0.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tb[7][lo & 0xFFu] ^ tb[6][(lo >> 8) & 0xFFu] ^
        tb[5][(lo >> 16) & 0xFFu] ^ tb[4][lo >> 24] ^
        tb[3][hi & 0xFFu] ^ tb[2][(hi >> 8) & 0xFFu] ^
        tb[1][(hi >> 16) & 0xFFu] ^ tb[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = tb[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#if defined(UDC_CRC32C_HW_DISPATCH)
// The SSE4.2 path is compiled with a per-function target attribute so the
// translation unit itself needs no -msse4.2; callers must gate on
// crc32c_hw_available() (cached cpuid probe) before taking it.
__attribute__((target("sse4.2"))) inline std::uint32_t crc32c_hw(
    const void* data, std::size_t len, std::uint32_t seed) {
  std::uint64_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = _mm_crc32_u8(static_cast<std::uint32_t>(c), *p++);
  }
  return static_cast<std::uint32_t>(c) ^ 0xFFFFFFFFu;
}

inline bool crc32c_hw_available() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace crc32_detail

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  return crc32_detail::crc_sliced<0xEDB88320u>(data, len, seed);
}

// The software table walk for CRC-32C, exposed so tests can cross-check the
// hardware dispatch against it byte for byte.
inline std::uint32_t crc32c_sw(const void* data, std::size_t len,
                               std::uint32_t seed = 0) {
  return crc32_detail::crc_sliced<0x82F63B78u>(data, len, seed);
}

inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
#if defined(UDC_CRC32C_HW_DISPATCH)
  if (crc32_detail::crc32c_hw_available()) {
    return crc32_detail::crc32c_hw(data, len, seed);
  }
#endif
  return crc32c_sw(data, len, seed);
}

}  // namespace udc
