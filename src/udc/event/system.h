// System: a set of runs (§2.1), with an indistinguishability index.
//
// Knowledge is defined relative to a system:  (R,r,m) |= K_p(phi)  iff  phi
// holds at every point (r',m') of R with r'_p(m') = r_p(m).  The index maps
// (process, local history) to the equivalence class of points sharing that
// local history, so the model checker's K_p evaluation is linear in the size
// of the class instead of the size of the system.
//
// All runs in a system share the same n.  Points beyond a run's horizon are
// not represented: each run contributes exactly (horizon + 1) points per
// process.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "udc/event/run.h"

namespace udc {

struct Point {
  std::size_t run = 0;  // index into System::runs()
  Time m = 0;

  friend bool operator==(Point, Point) = default;
};

class System {
 public:
  explicit System(std::vector<Run> runs);

  // Movable, non-copyable: the index references run storage.
  System(System&&) = default;
  System& operator=(System&&) = default;

  std::size_t size() const { return runs_.size(); }
  int n() const { return n_; }
  const Run& run(std::size_t i) const { return runs_[i]; }
  const std::vector<Run>& runs() const { return runs_; }
  Time max_horizon() const { return max_horizon_; }

  // All points (r', m') in the system with r'_p(m') = r_p(m), where (r,m) is
  // the point `at` — including `at` itself.
  std::span<const Point> equivalence_class(ProcessId p, Point at) const;

  // Convenience for the logic layer: iterate every point of the system.
  template <typename Fn>
  void for_each_point(Fn&& fn) const {
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      for (Time m = 0; m <= runs_[i].horizon(); ++m) {
        fn(Point{i, m});
      }
    }
  }

 private:
  struct Key {
    ProcessId p;
    std::uint64_t hash;
    std::size_t len;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.hash;
      h ^= (static_cast<std::uint64_t>(k.p) << 48) ^ k.len;
      h *= 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  std::vector<Run> runs_;
  int n_ = 0;
  Time max_horizon_ = 0;
  // Buckets keyed by (p, prefix hash, prefix length); each bucket holds one
  // or more *groups* of genuinely-equal local histories (collision-safe).
  struct Group {
    Point representative;
    std::vector<Point> members;
  };
  std::unordered_map<Key, std::vector<Group>, KeyHash> index_;

  const Group* find_group(ProcessId p, Point at) const;
};

}  // namespace udc
