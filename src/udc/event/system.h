// System: a set of runs (§2.1), with an indistinguishability index.
//
// Knowledge is defined relative to a system:  (R,r,m) |= K_p(phi)  iff  phi
// holds at every point (r',m') of R with r'_p(m') = r_p(m).  The index maps
// (process, local history) to the equivalence class of points sharing that
// local history, so the model checker's K_p evaluation is linear in the size
// of the class instead of the size of the system.
//
// All runs in a system share the same n.  Points beyond a run's horizon are
// not represented: each run contributes exactly (horizon + 1) points per
// process.  Runs may have different horizons; the dense point numbering
// (point_offset / total_points) packs them back-to-back so per-point tables
// waste no space on short runs.
//
// The index can be built serially or sharded across workers (see the
// two-argument constructor); both produce an identical index — identical
// group order, representatives, and member order — because shards cover
// contiguous ascending run ranges and are merged in run order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "udc/event/run.h"

namespace udc {

struct Point {
  std::size_t run = 0;  // index into System::runs()
  Time m = 0;

  friend bool operator==(Point, Point) = default;
};

class System {
 public:
  explicit System(std::vector<Run> runs);

  // Builds the indistinguishability index on `threads` workers (0 =
  // hardware_concurrency, 1 = the serial path).  The resulting System is
  // indistinguishable from the serial one: per-(run, process) partial
  // buckets are merged shard-by-shard in ascending run order, so group
  // representatives and member order come out identical.
  System(std::vector<Run> runs, unsigned threads);

  // Movable, non-copyable: the index references run storage.
  System(System&&) = default;
  System& operator=(System&&) = default;

  std::size_t size() const { return runs_.size(); }
  int n() const { return n_; }
  const Run& run(std::size_t i) const { return runs_[i]; }
  const std::vector<Run>& runs() const { return runs_; }
  Time max_horizon() const { return max_horizon_; }

  // Dense numbering of the system's points: run i's points occupy indices
  // [point_offset(i), point_offset(i) + horizon_i + 1).  Unlike the naive
  // run * (max_horizon + 1) + m scheme, no index is wasted when runs have
  // different horizons.
  std::size_t point_offset(std::size_t i) const { return point_offset_[i]; }
  std::size_t point_index(Point at) const {
    return point_offset_[at.run] + static_cast<std::size_t>(at.m);
  }
  std::size_t total_points() const { return total_points_; }

  // All points (r', m') in the system with r'_p(m') = r_p(m), where (r,m) is
  // the point `at` — including `at` itself.  O(1): the build-time hash index
  // is flattened into a dense (process, point) -> class table, so lookups do
  // no hashing and no history comparisons.
  std::span<const Point> equivalence_class(ProcessId p, Point at) const;

  // Convenience for the logic layer: iterate every point of the system.
  template <typename Fn>
  void for_each_point(Fn&& fn) const {
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      for (Time m = 0; m <= runs_[i].horizon(); ++m) {
        fn(Point{i, m});
      }
    }
  }

 private:
  struct Key {
    ProcessId p;
    std::uint64_t hash;
    std::size_t len;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.hash;
      h ^= (static_cast<std::uint64_t>(k.p) << 48) ^ k.len;
      h *= 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  std::vector<Run> runs_;
  int n_ = 0;
  Time max_horizon_ = 0;
  std::vector<std::size_t> point_offset_;
  std::size_t total_points_ = 0;
  // Build-time structure: buckets keyed by (p, prefix hash, prefix length);
  // each bucket holds one or more *groups* of genuinely-equal local
  // histories (collision-safe).  After construction the map is flattened
  // into classes_/class_of_ below and discarded.
  struct Group {
    Point representative;
    std::vector<Point> members;
  };
  using Index = std::unordered_map<Key, std::vector<Group>, KeyHash>;

  // Steady-state index: class_of_[p * total_points_ + point_index] names the
  // equivalence class of that (process, point); classes_ holds the member
  // lists in the order the serial build discovered them within each class.
  static constexpr std::uint32_t kNoClass = 0xFFFFFFFFu;
  std::vector<std::vector<Point>> classes_;
  std::vector<std::uint32_t> class_of_;

  void init_metadata();
  // Indexes runs [begin, end) into `out` with the serial insertion order
  // (run asc, process asc, time asc).
  void index_runs(Index& out, std::size_t begin, std::size_t end) const;
  void build_index(unsigned threads);
  // Moves the hash-indexed groups into the flat classes_/class_of_ tables.
  void finalize_index(Index&& index);
};

}  // namespace udc
