// Run: a function from time to cuts (§2.1), realized as one History per
// process plus, for each process, the history length at every time step.
//
// The paper's conditions on runs:
//   R1  r(0) is the tuple of empty histories
//   R2  per step, each process appends at most one event
//   R3  every receive has a matching earlier-or-same-cut send
//   R4  crash_p, if present, is the last event of p's history
//   R5  fairness: a message sent infinitely often to a live process is
//       received infinitely often
//
// R1/R2 hold by construction (Builder); R3/R4 (plus "init at most once") are
// enforced by validate().  R5 is a property of infinite runs; FairnessReport
// (fairness.h) checks the finite-horizon surrogate.
//
// Runs are immutable once built.  All spec checkers (coord/, fd/), the logic
// model checker, and the knowledge-theoretic constructions (kt/) consume
// this type.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/common/types.h"
#include "udc/event/history.h"

namespace udc {

class Run {
 public:
  // Incrementally assembles a run: repeat { append*(≤1 per process) ;
  // end_step() } then build().  The number of end_step() calls becomes the
  // horizon.
  class Builder {
   public:
    explicit Builder(int n);

    // Appends `e` to p's history within the current time step.  At most one
    // event per process per step (R2).
    Builder& append(ProcessId p, Event e);

    // Closes the current time step.
    Builder& end_step();

    // Validates and finalizes.  Throws InvariantViolation on R3/R4 breach
    // or a duplicated init event.
    Run build() &&;

    int n() const { return n_; }
    Time current_time() const {
      return static_cast<Time>(first_len_at_.front().size()) - 1;
    }
    // Length of p's history right now (including events this step).
    std::size_t len(ProcessId p) const { return histories_[p].size(); }
    const History& history(ProcessId p) const { return histories_[p]; }
    bool crashed(ProcessId p) const {
      return !histories_[p].empty() &&
             histories_[p].back().kind == EventKind::kCrash;
    }

   private:
    int n_;
    std::vector<History> histories_;
    // first_len_at_[p][m] = |r_p(m)|.
    std::vector<std::vector<std::uint32_t>> first_len_at_;
    std::vector<bool> appended_this_step_;
  };

  int n() const { return n_; }
  Time horizon() const { return horizon_; }

  // |r_p(m)|.  m is clamped to the horizon (histories are constant after it).
  std::size_t history_len(ProcessId p, Time m) const {
    if (m > horizon_) m = horizon_;
    return len_at_[p][static_cast<std::size_t>(m)];
  }
  const History& history(ProcessId p) const { return histories_[p]; }
  std::span<const Event> local_state(ProcessId p, Time m) const {
    return histories_[p].prefix(history_len(p, m));
  }
  std::uint64_t local_state_hash(ProcessId p, Time m) const {
    return histories_[p].prefix_hash(history_len(p, m));
  }

  // (r,m) ~_p (r',m'): identical local histories for p.
  static bool indistinguishable(const Run& r, Time m, const Run& r2, Time m2,
                                ProcessId p) {
    return History::prefixes_equal(r.histories_[p], r.history_len(p, m),
                                   r2.histories_[p], r2.history_len(p, m2));
  }

  // Time at which event index i of p entered the history (i.e. the least m
  // with |r_p(m)| > i).
  Time event_time(ProcessId p, std::size_t i) const {
    return event_time_[p][i];
  }

  // F(r): processes whose history contains crash (anywhere up to horizon).
  ProcSet faulty_set() const { return faulty_; }
  bool is_faulty(ProcessId p) const { return faulty_.contains(p); }
  ProcSet correct_set() const { return faulty_.complement(n_); }
  // Time the crash event entered p's history, or nullopt if p is correct.
  std::optional<Time> crash_time(ProcessId p) const {
    return is_faulty(p) ? std::optional<Time>(crash_time_[p]) : std::nullopt;
  }
  // crash(p) holds at (r, m): the crash event is in r_p(m).
  bool crashed_by(ProcessId p, Time m) const {
    return is_faulty(p) && crash_time_[p] <= m;
  }

  // Suspects_p(r,m): set carried by the most recent standard suspect event
  // in r_p(m); empty if none (§2.2).  Generalized reports are ignored here;
  // see gen_suspects_at for §4.
  ProcSet suspects_at(ProcessId p, Time m) const;

  // Most recent generalized report (S, k) in r_p(m), if any (§4).
  struct GenReport {
    ProcSet s;
    std::int32_t k = 0;
  };
  std::optional<GenReport> gen_suspects_at(ProcessId p, Time m) const;

  // All generalized reports in r_p(m) (the §4 checkers quantify over every
  // report in the history, not just the latest).
  std::vector<GenReport> gen_reports_up_to(ProcessId p, Time m) const;

  // Event-existence queries used by primitive propositions (§2.3): does an
  // event satisfying `pred` occur in r_p(m)?
  template <typename Pred>
  bool has_event(ProcessId p, Time m, Pred&& pred) const {
    auto state = local_state(p, m);
    for (const Event& e : state) {
      if (pred(e)) return true;
    }
    return false;
  }
  // First time an event satisfying pred enters p's history, or nullopt.
  template <typename Pred>
  std::optional<Time> first_event_time(ProcessId p, Pred&& pred) const {
    const History& h = histories_[p];
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (pred(h[i])) return event_time(p, i);
    }
    return std::nullopt;
  }

  bool init_in(ProcessId p, Time m, ActionId a) const {
    return has_event(p, m, [a](const Event& e) {
      return e.kind == EventKind::kInit && e.action == a;
    });
  }
  bool do_in(ProcessId p, Time m, ActionId a) const {
    return has_event(p, m, [a](const Event& e) {
      return e.kind == EventKind::kDo && e.action == a;
    });
  }

 private:
  friend class Builder;
  Run() = default;

  int n_ = 0;
  Time horizon_ = 0;
  std::vector<History> histories_;
  std::vector<std::vector<std::uint32_t>> len_at_;
  std::vector<std::vector<Time>> event_time_;
  // last_suspect_at_[p][i]: index of the most recent kSuspect event among
  // the first i events of p, or -1.  Likewise for generalized reports.
  std::vector<std::vector<std::int32_t>> last_suspect_at_;
  std::vector<std::vector<std::int32_t>> last_gen_suspect_at_;
  ProcSet faulty_;
  std::vector<Time> crash_time_;
};

}  // namespace udc
