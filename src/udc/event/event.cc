#include "udc/event/event.h"

#include <sstream>

namespace udc {

namespace {
const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kAlpha: return "alpha";
    case MsgKind::kAck: return "ack";
    case MsgKind::kSuspicionGossip: return "suspicions";
    case MsgKind::kInitGossip: return "init-gossip";
    case MsgKind::kEstimate: return "estimate";
    case MsgKind::kPropose: return "propose";
    case MsgKind::kEstimateAck: return "estimate-ack";
    case MsgKind::kDecide: return "decide";
    case MsgKind::kApp: return "app";
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kRejoin: return "rejoin";
  }
  return "?";
}
}  // namespace

std::string Message::to_string() const {
  std::ostringstream out;
  out << kind_name(kind);
  if (action != kInvalidAction) out << " α" << action;
  if (!procs.empty()) out << ' ' << procs.to_string();
  if (a != 0 || b != 0) out << " (" << a << ',' << b << ')';
  return out.str();
}

std::string Event::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case EventKind::kSend:
      out << "send(" << peer << ", " << msg.to_string() << ')';
      break;
    case EventKind::kRecv:
      out << "recv(" << peer << ", " << msg.to_string() << ')';
      break;
    case EventKind::kDo:
      out << "do(α" << action << ')';
      break;
    case EventKind::kInit:
      out << "init(α" << action << ')';
      break;
    case EventKind::kCrash:
      out << "crash";
      break;
    case EventKind::kSuspect:
      out << "suspect" << suspects.to_string();
      break;
    case EventKind::kSuspectGen:
      out << "suspect(" << suspects.to_string() << ", " << k << ')';
      break;
  }
  return out.str();
}

}  // namespace udc
