#include "udc/event/trace.h"

#include <sstream>

#include "udc/common/check.h"

namespace udc {

namespace {

const char* msg_kind_token(MsgKind k) {
  switch (k) {
    case MsgKind::kAlpha: return "alpha";
    case MsgKind::kAck: return "ack";
    case MsgKind::kSuspicionGossip: return "sgossip";
    case MsgKind::kInitGossip: return "igossip";
    case MsgKind::kEstimate: return "estimate";
    case MsgKind::kPropose: return "propose";
    case MsgKind::kEstimateAck: return "eack";
    case MsgKind::kDecide: return "decide";
    case MsgKind::kApp: return "app";
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kRejoin: return "rejoin";
  }
  return "?";
}

MsgKind parse_msg_kind(const std::string& token) {
  if (token == "alpha") return MsgKind::kAlpha;
  if (token == "ack") return MsgKind::kAck;
  if (token == "sgossip") return MsgKind::kSuspicionGossip;
  if (token == "igossip") return MsgKind::kInitGossip;
  if (token == "estimate") return MsgKind::kEstimate;
  if (token == "propose") return MsgKind::kPropose;
  if (token == "eack") return MsgKind::kEstimateAck;
  if (token == "decide") return MsgKind::kDecide;
  if (token == "app") return MsgKind::kApp;
  if (token == "heartbeat") return MsgKind::kHeartbeat;
  if (token == "rejoin") return MsgKind::kRejoin;
  UDC_CHECK(false, "unknown message kind token: " + token);
}

void format_message(std::ostringstream& out, const Message& m) {
  out << " kind=" << msg_kind_token(m.kind) << " action=" << m.action
      << " procs=" << m.procs.bits() << " a=" << m.a << " b=" << m.b;
}

}  // namespace

// Reads "key=value" and returns value; enforces the expected key.  Shared
// by the run and system parsers.
static std::string expect_field(std::istringstream& in,
                                const std::string& key) {
  std::string token;
  UDC_CHECK(static_cast<bool>(in >> token), "trace truncated, wanted " + key);
  auto eq = token.find('=');
  UDC_CHECK(eq != std::string::npos && token.substr(0, eq) == key,
            "trace expected field '" + key + "', got '" + token + "'");
  return token.substr(eq + 1);
}

namespace {

Message parse_message(std::istringstream& in) {
  Message m;
  m.kind = parse_msg_kind(expect_field(in, "kind"));
  m.action = std::stoll(expect_field(in, "action"));
  m.procs = ProcSet(std::stoull(expect_field(in, "procs")));
  m.a = std::stoll(expect_field(in, "a"));
  m.b = std::stoll(expect_field(in, "b"));
  return m;
}

}  // namespace

std::string format_run(const Run& r, const TraceOptions& opts) {
  std::ostringstream out;
  out << "run n=" << r.n() << " horizon=" << r.horizon() << '\n';
  Time to = opts.to < 0 ? r.horizon() : opts.to;
  for (Time m = std::max<Time>(opts.from, 1); m <= to; ++m) {
    for (ProcessId p = 0; p < r.n(); ++p) {
      if (opts.only_process != kInvalidProcess && p != opts.only_process) {
        continue;
      }
      std::size_t prev = r.history_len(p, m - 1);
      if (r.history_len(p, m) == prev) continue;
      const Event& e = r.history(p)[prev];
      if (!opts.include_fd_events && e.is_failure_detector_event()) continue;
      out << "t=" << m << " p=" << p << ' ';
      switch (e.kind) {
        case EventKind::kSend:
          out << "send to=" << e.peer;
          format_message(out, e.msg);
          break;
        case EventKind::kRecv:
          out << "recv from=" << e.peer;
          format_message(out, e.msg);
          break;
        case EventKind::kDo:
          out << "do action=" << e.action;
          break;
        case EventKind::kInit:
          out << "init action=" << e.action;
          break;
        case EventKind::kCrash:
          out << "crash";
          break;
        case EventKind::kSuspect:
          out << "suspect s=" << e.suspects.bits();
          break;
        case EventKind::kSuspectGen:
          out << "gensuspect s=" << e.suspects.bits() << " k=" << e.k;
          break;
      }
      out << '\n';
    }
  }
  return out.str();
}

Run parse_run(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  UDC_CHECK(static_cast<bool>(std::getline(lines, line)),
            "empty trace");
  int n = 0;
  Time horizon = 0;
  {
    std::istringstream header(line);
    std::string token;
    header >> token;
    UDC_CHECK(token == "run", "trace must start with 'run'");
    n = std::stoi(expect_field(header, "n"));
    horizon = std::stoll(expect_field(header, "horizon"));
  }
  Run::Builder b(n);
  Time now = 0;
  auto advance_to = [&](Time t) {
    UDC_CHECK(t >= now, "trace times must be nondecreasing");
    while (now < t) {
      b.end_step();
      ++now;
    }
  };
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    Time t = std::stoll(expect_field(in, "t"));
    advance_to(t - 1);  // events of step t are appended before end_step t
    ProcessId p = static_cast<ProcessId>(std::stoi(expect_field(in, "p")));
    std::string kind;
    UDC_CHECK(static_cast<bool>(in >> kind), "trace line missing event kind");
    // Same-step events: builder time must be t-1 with this step open; if we
    // already closed step t, the trace is out of order.
    UDC_CHECK(now == t - 1, "trace step already closed");
    if (kind == "send") {
      ProcessId to = static_cast<ProcessId>(std::stoi(expect_field(in, "to")));
      b.append(p, Event::send(to, parse_message(in)));
    } else if (kind == "recv") {
      ProcessId from =
          static_cast<ProcessId>(std::stoi(expect_field(in, "from")));
      b.append(p, Event::recv(from, parse_message(in)));
    } else if (kind == "do") {
      b.append(p, Event::do_action(std::stoll(expect_field(in, "action"))));
    } else if (kind == "init") {
      b.append(p, Event::init(std::stoll(expect_field(in, "action"))));
    } else if (kind == "crash") {
      b.append(p, Event::crash());
    } else if (kind == "suspect") {
      b.append(p, Event::suspect(ProcSet(std::stoull(expect_field(in, "s")))));
    } else if (kind == "gensuspect") {
      ProcSet s(std::stoull(expect_field(in, "s")));
      int k = std::stoi(expect_field(in, "k"));
      b.append(p, Event::suspect_gen(s, k));
    } else {
      UDC_CHECK(false, "unknown event kind in trace: " + kind);
    }
  }
  advance_to(horizon);
  return std::move(b).build();
}

std::string format_system(const System& sys) {
  std::ostringstream out;
  out << "system runs=" << sys.size() << '\n';
  for (std::size_t i = 0; i < sys.size(); ++i) {
    out << "--- run " << i << '\n';
    out << format_run(sys.run(i));
  }
  return out.str();
}

System parse_system(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  UDC_CHECK(static_cast<bool>(std::getline(lines, line)), "empty system");
  std::size_t expected = 0;
  {
    std::istringstream header(line);
    std::string token;
    header >> token;
    UDC_CHECK(token == "system", "system trace must start with 'system'");
    expected = std::stoull(expect_field(header, "runs"));
  }
  std::vector<Run> runs;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      runs.push_back(parse_run(current));
      current.clear();
    }
  };
  while (std::getline(lines, line)) {
    if (line.rfind("--- run", 0) == 0) {
      flush();
      continue;
    }
    current += line;
    current += '\n';
  }
  flush();
  UDC_CHECK(runs.size() == expected, "system trace run count mismatch");
  return System(std::move(runs));
}

}  // namespace udc
