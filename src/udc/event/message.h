// Messages exchanged by udckit protocols.
//
// The paper treats messages abstractly ("msg").  The one structural property
// it relies on is message *identity*: fairness R5 speaks of "the same message
// msg" being sent infinitely often, so a retransmission must be equal (as a
// value) to the original.  Message is therefore a small value type with
// field-wise equality and hashing, and NO per-send sequence number.
//
// The fixed field set below is the union of what the paper's protocols need:
//   - UDC/nUDC:      kAlpha / kAck carrying an ActionId
//   - FD conversion: kSuspicionGossip carrying a ProcSet (Prop 2.1's
//                    "communicate their suspicions")
//   - FIP gossip:    kInitGossip carrying a set of initiated actions encoded
//                    as (action, procs) pairs streamed one per message
//   - consensus:     kEstimate / kAck2 / kDecide with round and value fields
#pragma once

#include <cstdint>
#include <string>

#include "udc/common/proc_set.h"
#include "udc/common/types.h"

namespace udc {

enum class MsgKind : std::uint8_t {
  kAlpha,            // "perform action `action`" (UDC/nUDC flooding)
  kAck,              // acknowledgment of a kAlpha message for `action`
  kSuspicionGossip,  // "my FD has (cumulatively) suspected `procs`"
  kInitGossip,       // "action `action` was initiated" (FIP piggyback)
  kEstimate,         // consensus: estimate for round a (payload in b)
  kPropose,          // consensus: coordinator's round-a proposal, value b
  kEstimateAck,      // consensus: ack/nack of round a (b = 1 ack / 0 nack)
  kDecide,           // consensus: decide value b
  kApp,              // free-form application payload (examples)
  kHeartbeat,        // live-runtime liveness beacon (below the paper's model:
                     // carried by rt/transport but never recorded in a Run)
  kRejoin,           // live-runtime recovery beacon, also below the model:
                     // a worker restarted from its durable log tells every
                     // peer to treat ack-state derived from its pre-crash
                     // messages as stale (Process::on_peer_recovered); sent
                     // over the reliable ARQ path but never recorded
};

struct Message {
  MsgKind kind = MsgKind::kApp;
  ActionId action = kInvalidAction;  // for kAlpha/kAck/kInitGossip
  ProcSet procs;                     // for kSuspicionGossip
  std::int64_t a = 0;                // generic small field (round, ...)
  std::int64_t b = 0;                // generic small field (value, ...)

  friend bool operator==(const Message&, const Message&) = default;

  std::string to_string() const;
};

// FNV-1a-style field mix; stable across platforms.
struct MessageHash {
  std::size_t operator()(const Message& m) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(m.kind));
    mix(static_cast<std::uint64_t>(m.action));
    mix(m.procs.bits());
    mix(static_cast<std::uint64_t>(m.a));
    mix(static_cast<std::uint64_t>(m.b));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace udc
