#include "udc/event/system.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

System::System(std::vector<Run> runs) : runs_(std::move(runs)) {
  UDC_CHECK(!runs_.empty(), "a system must contain at least one run");
  n_ = runs_.front().n();
  for (const Run& r : runs_) {
    UDC_CHECK(r.n() == n_, "all runs in a system must share the same n");
    max_horizon_ = std::max(max_horizon_, r.horizon());
  }
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const Run& r = runs_[i];
    for (ProcessId p = 0; p < n_; ++p) {
      for (Time m = 0; m <= r.horizon(); ++m) {
        Key key{p, r.local_state_hash(p, m), r.history_len(p, m)};
        auto& groups = index_[key];
        Group* home = nullptr;
        for (Group& g : groups) {
          const Run& rep = runs_[g.representative.run];
          if (Run::indistinguishable(r, m, rep, g.representative.m, p)) {
            home = &g;
            break;
          }
        }
        if (home == nullptr) {
          groups.push_back(Group{Point{i, m}, {}});
          home = &groups.back();
        }
        home->members.push_back(Point{i, m});
      }
    }
  }
}

const System::Group* System::find_group(ProcessId p, Point at) const {
  const Run& r = runs_[at.run];
  Key key{p, r.local_state_hash(p, at.m), r.history_len(p, at.m)};
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  for (const Group& g : it->second) {
    const Run& rep = runs_[g.representative.run];
    if (Run::indistinguishable(r, at.m, rep, g.representative.m, p)) {
      return &g;
    }
  }
  return nullptr;
}

std::span<const Point> System::equivalence_class(ProcessId p, Point at) const {
  UDC_CHECK(at.run < runs_.size(), "point refers to a run outside the system");
  UDC_CHECK(at.m >= 0 && at.m <= runs_[at.run].horizon(),
            "point beyond run horizon");
  const Group* g = find_group(p, at);
  UDC_CHECK(g != nullptr, "every in-system point must be indexed");
  return g->members;
}

}  // namespace udc
