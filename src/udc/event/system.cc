#include "udc/event/system.h"

#include <algorithm>
#include <thread>

#include "udc/common/check.h"
#include "udc/common/parallel.h"

namespace udc {

System::System(std::vector<Run> runs) : runs_(std::move(runs)) {
  init_metadata();
  build_index(1);
}

System::System(std::vector<Run> runs, unsigned threads)
    : runs_(std::move(runs)) {
  init_metadata();
  build_index(threads);
}

void System::init_metadata() {
  UDC_CHECK(!runs_.empty(), "a system must contain at least one run");
  n_ = runs_.front().n();
  point_offset_.reserve(runs_.size());
  for (const Run& r : runs_) {
    UDC_CHECK(r.n() == n_, "all runs in a system must share the same n");
    max_horizon_ = std::max(max_horizon_, r.horizon());
    point_offset_.push_back(total_points_);
    total_points_ += static_cast<std::size_t>(r.horizon()) + 1;
  }
}

void System::index_runs(Index& out, std::size_t begin, std::size_t end) const {
  for (std::size_t i = begin; i < end; ++i) {
    const Run& r = runs_[i];
    for (ProcessId p = 0; p < n_; ++p) {
      for (Time m = 0; m <= r.horizon(); ++m) {
        Key key{p, r.local_state_hash(p, m), r.history_len(p, m)};
        auto& groups = out[key];
        Group* home = nullptr;
        for (Group& g : groups) {
          const Run& rep = runs_[g.representative.run];
          if (Run::indistinguishable(r, m, rep, g.representative.m, p)) {
            home = &g;
            break;
          }
        }
        if (home == nullptr) {
          groups.push_back(Group{Point{i, m}, {}});
          home = &groups.back();
        }
        home->members.push_back(Point{i, m});
      }
    }
  }
}

void System::build_index(unsigned threads) {
  threads = resolve_parallelism(threads, runs_.size());
  if (threads <= 1) {
    Index index;
    index_runs(index, 0, runs_.size());
    finalize_index(std::move(index));
    return;
  }

  // Contiguous ascending run ranges, one shard per worker.  Merging the
  // shards in shard order reproduces the serial insertion order exactly:
  // serial order is (run asc, p asc, m asc), each shard preserves it within
  // its range, and runs in shard k all precede runs in shard k+1.
  std::vector<Index> shards(threads);
  const std::size_t per =
      (runs_.size() + threads - 1) / static_cast<std::size_t>(threads);
  auto work = [&](unsigned t) {
    std::size_t begin = static_cast<std::size_t>(t) * per;
    std::size_t end = std::min(begin + per, runs_.size());
    if (begin < end) index_runs(shards[t], begin, end);
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(work, t);
  work(0);
  for (std::thread& t : pool) t.join();

  Index merged = std::move(shards[0]);
  for (unsigned t = 1; t < threads; ++t) {
    for (auto& [key, groups] : shards[t]) {
      auto [it, inserted] = merged.try_emplace(key);
      std::vector<Group>& dst = it->second;
      if (inserted) {
        dst = std::move(groups);
        continue;
      }
      for (Group& g : groups) {
        Group* home = nullptr;
        const Run& g_rep = runs_[g.representative.run];
        for (Group& have : dst) {
          const Run& rep = runs_[have.representative.run];
          if (Run::indistinguishable(g_rep, g.representative.m, rep,
                                     have.representative.m, key.p)) {
            home = &have;
            break;
          }
        }
        if (home == nullptr) {
          dst.push_back(std::move(g));
        } else {
          home->members.insert(home->members.end(), g.members.begin(),
                               g.members.end());
        }
      }
    }
  }
  finalize_index(std::move(merged));
}

void System::finalize_index(Index&& index) {
  // Flatten the hash buckets into a dense (process, point) -> class table:
  // the steady-state lookup then costs one multiply and two loads, with no
  // hashing and no history comparison, and the map itself is discarded.
  class_of_.assign(static_cast<std::size_t>(n_) * total_points_, kNoClass);
  classes_.clear();
  std::size_t group_count = 0;
  for (const auto& [key, groups] : index) group_count += groups.size();
  classes_.reserve(group_count);
  for (auto& [key, groups] : index) {
    for (Group& g : groups) {
      const auto id = static_cast<std::uint32_t>(classes_.size());
      const std::size_t base =
          static_cast<std::size_t>(key.p) * total_points_;
      for (Point member : g.members) {
        class_of_[base + point_index(member)] = id;
      }
      classes_.push_back(std::move(g.members));
    }
  }
}

std::span<const Point> System::equivalence_class(ProcessId p, Point at) const {
  UDC_CHECK(at.run < runs_.size(), "point refers to a run outside the system");
  UDC_CHECK(at.m >= 0 && at.m <= runs_[at.run].horizon(),
            "point beyond run horizon");
  UDC_CHECK(p >= 0 && p < n_, "process outside the system");
  const std::uint32_t id =
      class_of_[static_cast<std::size_t>(p) * total_points_ + point_index(at)];
  UDC_CHECK(id != kNoClass, "every in-system point must be indexed");
  return classes_[id];
}

}  // namespace udc
