// Finite-horizon surrogate for the fairness condition R5.
//
// R5 is a property of infinite runs ("sent infinitely often => received
// infinitely often") and cannot be decided on a prefix.  The checkable
// surrogate: for every (sender p, recipient q, message msg), if p sent msg
// to q at least `threshold` times while q was alive, then q received msg at
// least once.  A simulator whose channels honor fairness will pass this for
// any reasonable threshold; an unfair channel (adversarial permanent drop)
// will be caught.  Benches sweep the threshold to show verdict stability —
// this is the documented substitution for R5 (see DESIGN.md §2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "udc/event/run.h"

namespace udc {

struct FairnessViolation {
  ProcessId sender = kInvalidProcess;
  ProcessId recipient = kInvalidProcess;
  Message msg;
  std::size_t times_sent = 0;

  std::string to_string() const;
};

struct FairnessReport {
  std::vector<FairnessViolation> violations;
  bool fair() const { return violations.empty(); }
};

// Checks the surrogate over the whole run.  Sends after the recipient's
// crash are excluded (R5 only constrains deliveries to live processes).
FairnessReport check_fairness(const Run& r, std::size_t threshold);

}  // namespace udc
