#include "udc/event/run.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "udc/common/check.h"

namespace udc {

Run::Builder::Builder(int n) : n_(n) {
  UDC_CHECK(n > 0 && n <= kMaxProcesses, "process count out of range");
  histories_.resize(n);
  first_len_at_.assign(n, {0u});  // R1: empty histories at time 0
  appended_this_step_.assign(n, false);
}

Run::Builder& Run::Builder::append(ProcessId p, Event e) {
  UDC_CHECK(p >= 0 && p < n_, "process id out of range");
  UDC_CHECK(!appended_this_step_[static_cast<std::size_t>(p)],
            "R2: at most one event per process per step");
  UDC_CHECK(!crashed(p), "R4: no events after crash");
  appended_this_step_[static_cast<std::size_t>(p)] = true;
  histories_[p].append(std::move(e));
  return *this;
}

Run::Builder& Run::Builder::end_step() {
  for (ProcessId p = 0; p < n_; ++p) {
    first_len_at_[p].push_back(static_cast<std::uint32_t>(histories_[p].size()));
    appended_this_step_[static_cast<std::size_t>(p)] = false;
  }
  return *this;
}

Run Run::Builder::build() && {
  Run r;
  r.n_ = n_;
  r.horizon_ = static_cast<Time>(first_len_at_.front().size()) - 1;
  r.histories_ = std::move(histories_);
  r.len_at_ = std::move(first_len_at_);
  r.event_time_.resize(n_);
  r.last_suspect_at_.resize(n_);
  r.last_gen_suspect_at_.resize(n_);
  r.crash_time_.assign(n_, kTimeMax);

  for (ProcessId p = 0; p < n_; ++p) {
    const History& h = r.histories_[p];
    // event_time: invert len_at_.
    auto& et = r.event_time_[p];
    et.resize(h.size());
    {
      std::size_t i = 0;
      for (Time m = 1; m <= r.horizon_; ++m) {
        while (i < r.len_at_[p][static_cast<std::size_t>(m)]) {
          et[i++] = m;
        }
      }
      UDC_CHECK(i == h.size(), "len_at inconsistent with history length");
    }
    // Suspect-report indices and crash/init validation.
    auto& ls = r.last_suspect_at_[p];
    auto& lg = r.last_gen_suspect_at_[p];
    ls.assign(h.size() + 1, -1);
    lg.assign(h.size() + 1, -1);
    for (std::size_t i = 0; i < h.size(); ++i) {
      ls[i + 1] = h[i].kind == EventKind::kSuspect ? static_cast<std::int32_t>(i)
                                                   : ls[i];
      lg[i + 1] = h[i].kind == EventKind::kSuspectGen
                      ? static_cast<std::int32_t>(i)
                      : lg[i];
      if (h[i].kind == EventKind::kCrash) {
        UDC_CHECK(i + 1 == h.size(), "R4: crash must be the last event");
        r.faulty_.insert(p);
        r.crash_time_[p] = et[i];
      }
    }
  }

  // init_p(alpha) at most once per run and only in one history (§2.4).
  {
    std::map<ActionId, ProcessId> init_owner;
    for (ProcessId p = 0; p < n_; ++p) {
      for (const Event& e : r.histories_[p].events()) {
        if (e.kind != EventKind::kInit) continue;
        auto [it, inserted] = init_owner.emplace(e.action, p);
        UDC_CHECK(inserted, "init event duplicated (within or across histories)");
        (void)it;
      }
    }
  }

  // R3: at every cut, receive counts never exceed send counts, per
  // (sender, recipient, message) triple, and each receive's matching send is
  // no later than the receive.
  {
    // Gather timed sends and receives.
    struct Timed {
      Time t;
      Message msg;
    };
    std::map<std::pair<ProcessId, ProcessId>, std::vector<Timed>> sends, recvs;
    for (ProcessId p = 0; p < n_; ++p) {
      const History& h = r.histories_[p];
      for (std::size_t i = 0; i < h.size(); ++i) {
        const Event& e = h[i];
        if (e.kind == EventKind::kSend) {
          sends[{p, e.peer}].push_back({r.event_time_[p][i], e.msg});
        } else if (e.kind == EventKind::kRecv) {
          recvs[{e.peer, p}].push_back({r.event_time_[p][i], e.msg});
        }
      }
    }
    for (auto& [chan, rlist] : recvs) {
      auto sit = sends.find(chan);
      for (const Timed& rv : rlist) {
        UDC_CHECK(sit != sends.end(), "R3: receive with no send on channel");
        // Count sends of this message at time <= rv.t vs receives <= rv.t.
        std::size_t nsend = 0;
        for (const Timed& sd : sit->second) {
          if (sd.msg == rv.msg && sd.t <= rv.t) ++nsend;
        }
        std::size_t nrecv = 0;
        for (const Timed& rv2 : rlist) {
          if (rv2.msg == rv.msg && rv2.t <= rv.t) ++nrecv;
        }
        UDC_CHECK(nrecv <= nsend,
                  "R3: more receives than sends of a message by some cut");
      }
    }
  }

  return r;
}

ProcSet Run::suspects_at(ProcessId p, Time m) const {
  std::size_t len = history_len(p, m);
  std::int32_t idx = last_suspect_at_[p][len];
  if (idx < 0) return ProcSet{};
  return histories_[p][static_cast<std::size_t>(idx)].suspects;
}

std::optional<Run::GenReport> Run::gen_suspects_at(ProcessId p, Time m) const {
  std::size_t len = history_len(p, m);
  std::int32_t idx = last_gen_suspect_at_[p][len];
  if (idx < 0) return std::nullopt;
  const Event& e = histories_[p][static_cast<std::size_t>(idx)];
  return GenReport{e.suspects, e.k};
}

std::vector<Run::GenReport> Run::gen_reports_up_to(ProcessId p, Time m) const {
  std::vector<GenReport> out;
  for (const Event& e : local_state(p, m)) {
    if (e.kind == EventKind::kSuspectGen) out.push_back({e.suspects, e.k});
  }
  return out;
}

}  // namespace udc
