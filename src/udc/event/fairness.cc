#include "udc/event/fairness.h"

#include <sstream>
#include <tuple>

namespace udc {

std::string FairnessViolation::to_string() const {
  std::ostringstream out;
  out << "p" << sender << " sent [" << msg.to_string() << "] to p" << recipient
      << ' ' << times_sent << " times with no receive";
  return out.str();
}

FairnessReport check_fairness(const Run& r, std::size_t threshold) {
  struct Tally {
    std::size_t sent = 0;
    std::size_t received = 0;
  };
  // Keyed by (sender, recipient, message); Message lacks operator<, so key
  // on a stable rendering plus the endpoints.
  std::map<std::tuple<ProcessId, ProcessId, std::string>,
           std::pair<Message, Tally>>
      tallies;

  for (ProcessId p = 0; p < r.n(); ++p) {
    const History& h = r.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.kind == EventKind::kSend) {
        // Only sends while the recipient is still alive count toward R5.
        if (r.crashed_by(e.peer, r.event_time(p, i))) continue;
        auto& entry =
            tallies[{p, e.peer, e.msg.to_string()}];
        entry.first = e.msg;
        entry.second.sent++;
      } else if (e.kind == EventKind::kRecv) {
        auto& entry = tallies[{e.peer, p, e.msg.to_string()}];
        entry.first = e.msg;
        entry.second.received++;
      }
    }
  }

  FairnessReport report;
  for (const auto& [key, entry] : tallies) {
    const auto& [msg, tally] = entry;
    if (tally.sent >= threshold && tally.received == 0) {
      report.violations.push_back(FairnessViolation{
          std::get<0>(key), std::get<1>(key), msg, tally.sent});
    }
  }
  return report;
}

}  // namespace udc
