#include "udc/event/causality.h"

#include <algorithm>
#include <map>

namespace udc {

// The index stores the delivery edges sorted by receive time; a chain query
// is one forward pass (chains only move forward in time).  With message
// retransmission a receive may correspond to several sends of the same
// content; a chain may ride ANY of them (the paper's chains are about
// information flow, and identical payloads carry identical information), so
// every (send <= receive) pairing becomes an edge.

std::vector<CausalIndex::Edge> CausalIndex::collect_edges(const Run& r) {
  // Gather send times and receive times per (sender, recipient, message).
  struct Times {
    std::vector<Time> sends;
    std::vector<Time> recvs;
  };
  std::map<std::tuple<ProcessId, ProcessId, std::string>, Times> by_msg;
  for (ProcessId p = 0; p < r.n(); ++p) {
    const History& h = r.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      const Event& e = h[i];
      if (e.kind == EventKind::kSend) {
        by_msg[{p, e.peer, e.msg.to_string()}].sends.push_back(
            r.event_time(p, i));
      } else if (e.kind == EventKind::kRecv) {
        by_msg[{e.peer, p, e.msg.to_string()}].recvs.push_back(
            r.event_time(p, i));
      }
    }
  }
  std::vector<Edge> edges;
  for (auto& [key, times] : by_msg) {
    for (Time tr : times.recvs) {
      for (Time ts : times.sends) {
        if (ts <= tr) {
          edges.push_back(Edge{std::get<0>(key), std::get<1>(key), ts, tr});
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.received_at < b.received_at;
  });
  return edges;
}

CausalIndex::CausalIndex(const Run& r) : run_(r), n_(r.n()) {
  edges_storage_ = collect_edges(r);
}

Time CausalIndex::earliest_reach(ProcessId from, Time from_m,
                                 ProcessId q) const {
  if (q == from) return from_m;
  auto key = std::pair<ProcessId, Time>(from, from_m);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    std::vector<Time> earliest(static_cast<std::size_t>(n_), kTimeMax);
    earliest[static_cast<std::size_t>(from)] = from_m;
    for (const Edge& e : edges_storage_) {
      Time at_sender = earliest[static_cast<std::size_t>(e.from)];
      if (at_sender != kTimeMax && e.sent_at >= at_sender) {
        Time& dst = earliest[static_cast<std::size_t>(e.to)];
        if (e.received_at < dst) dst = e.received_at;
      }
    }
    it = memo_.emplace(key, std::move(earliest)).first;
  }
  return it->second[static_cast<std::size_t>(q)];
}

bool chain_from_init(const CausalIndex& idx, const Run& r, ProcessId owner,
                     ActionId alpha, ProcessId q, Time by) {
  auto m_init = r.first_event_time(owner, [alpha](const Event& e) {
    return e.kind == EventKind::kInit && e.action == alpha;
  });
  if (!m_init) return false;
  if (q == owner) return *m_init <= by;
  return idx.has_chain(owner, *m_init, q, by);
}

}  // namespace udc
