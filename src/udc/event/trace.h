// Human-readable run traces, with a parse-back path for golden tests.
//
// format_run() renders a run as one line per (time, process, event), in the
// global time order the simulator produced; parse_run() reconstructs a
// validated Run from that text.  Round-tripping through the trace is a
// strong structural test (it re-runs the R1-R4 validators on the parsed
// side), and the text form is the debugging workhorse: every protocol bug
// found while building udckit was diagnosed by reading one of these.
#pragma once

#include <string>

#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

struct TraceOptions {
  // Omit failure-detector events (they often dominate line count).
  bool include_fd_events = true;
  // Only events of this process (-1 = all).
  ProcessId only_process = kInvalidProcess;
  // Only events in [from, to] (inclusive; to = -1 means horizon).
  Time from = 0;
  Time to = -1;
};

std::string format_run(const Run& r, const TraceOptions& opts = {});

// Parses the output of format_run (with default options) back into a Run.
// The trace must carry every event and the `horizon:` header; throws
// InvariantViolation on malformed input or R-condition violations.
Run parse_run(const std::string& text);

// Whole systems: runs concatenated under `system runs=<k>` with `--- run i`
// separators.  Round-trips through parse_system reproduce the exact same
// knowledge structure (the index is rebuilt from identical histories) —
// generated experimental systems can be archived as text artifacts.
std::string format_system(const System& sys);
System parse_system(const std::string& text);

}  // namespace udc
