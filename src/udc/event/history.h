// History: the totally-ordered sequence of events at one process (§2.1).
//
// Histories are append-only.  A History maintains, alongside its events, a
// rolling hash of every prefix: the knowledge operator K_p quantifies over
// points with *identical local histories* (r,m) ~_p (r',m'), and systems may
// contain thousands of points, so prefix comparison must be O(1) expected
// (hash compare, with a full verify on hash hit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "udc/common/check.h"
#include "udc/event/event.h"

namespace udc {

class History {
 public:
  History() { prefix_hash_.push_back(kSeed); }

  void append(Event e) {
    std::uint64_t h = prefix_hash_.back();
    // Combine previous prefix hash with event hash (order-sensitive).
    h = h * 0x100000001b3ull + e.hash();
    prefix_hash_.push_back(h);
    events_.push_back(std::move(e));
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& operator[](std::size_t i) const { return events_[i]; }
  const Event& back() const { return events_.back(); }

  std::span<const Event> events() const { return events_; }
  std::span<const Event> prefix(std::size_t len) const {
    UDC_CHECK(len <= events_.size(), "prefix longer than history");
    return {events_.data(), len};
  }

  // Hash of the first `len` events.
  std::uint64_t prefix_hash(std::size_t len) const {
    UDC_CHECK(len < prefix_hash_.size(), "prefix longer than history");
    return prefix_hash_[len];
  }
  std::uint64_t hash() const { return prefix_hash_.back(); }

  // True iff the first `len_a` events of `a` equal the first `len_b` events
  // of `b`.  Hash-accelerated; falls back to element compare on hash match.
  static bool prefixes_equal(const History& a, std::size_t len_a,
                             const History& b, std::size_t len_b) {
    if (len_a != len_b) return false;
    if (a.prefix_hash(len_a) != b.prefix_hash(len_b)) return false;
    for (std::size_t i = 0; i < len_a; ++i) {
      if (!(a.events_[i] == b.events_[i])) return false;
    }
    return true;
  }

  friend bool operator==(const History& a, const History& b) {
    return prefixes_equal(a, a.size(), b, b.size());
  }

 private:
  static constexpr std::uint64_t kSeed = 0x243f6a8885a308d3ull;  // pi
  std::vector<Event> events_;
  std::vector<std::uint64_t> prefix_hash_;  // prefix_hash_[i] covers events [0,i)
};

}  // namespace udc
