// Causal structure of a run: Lamport happens-before and the paper's
// message chains (§3, footnote 5).
//
// "There is a message chain from p to q between m_p and m > m_p if there is
//  a sequence of messages msg_1..msg_k and processes p_1..p_{k+1} such that
//  msg_i is sent by p_i to p_{i+1} and is received, p_{i+1} sends msg_{i+1}
//  after receiving msg_i, p = p_1, q = p_{k+1}, p sends msg_1 at or after
//  m_p, and q receives msg_k at or before m."
//
// Chains are what carry knowledge in full-information protocols: the A4
// discussion and the Theorem 3.6 machinery quantify over them.  CausalIndex
// computes, for every (source process, source time), the earliest time each
// other process is causally reachable — one forward sweep over the run's
// receive events — and answers chain queries in O(1).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "udc/event/run.h"

namespace udc {

class CausalIndex {
 public:
  explicit CausalIndex(const Run& r);

  // Earliest time m such that there is a message chain from (from, from_m)
  // to q receiving at or before m — or kTimeMax if no chain exists within
  // the horizon.  For q == from the answer is from_m itself (empty chain).
  Time earliest_reach(ProcessId from, Time from_m, ProcessId q) const;

  // The footnote-5 predicate verbatim.
  bool has_chain(ProcessId from, Time from_m, ProcessId to, Time to_m) const {
    return earliest_reach(from, from_m, to) <= to_m;
  }

  // Lamport happens-before on (process, time) pairs: (p, m1) -> (q, m2)
  // iff p == q and m1 <= m2, or a chain from (p, m1) reaches q by m2.
  bool happens_before(ProcessId p, Time m1, ProcessId q, Time m2) const {
    if (p == q) return m1 <= m2;
    return has_chain(p, m1, q, m2);
  }

 private:
  struct Edge {
    ProcessId from;
    ProcessId to;
    Time sent_at;
    Time received_at;
  };

  static std::vector<Edge> collect_edges(const Run& r);

  const Run& run_;
  int n_;
  // Delivery edges sorted by receive time; a chain query is one forward
  // pass over them (chains only move forward in time), memoized per
  // (source, start-time) pair.
  std::vector<Edge> edges_storage_;
  mutable std::map<std::pair<ProcessId, Time>, std::vector<Time>> memo_;
};

// Knowledge-transfer sanity predicate used by property tests: in the
// flooding/ack protocols, a process q with an α-message-derived fact must
// have a chain from the initiator's init point to q (messages are the only
// channel of information).
bool chain_from_init(const CausalIndex& idx, const Run& r, ProcessId owner,
                     ActionId alpha, ProcessId q, Time by);

}  // namespace udc
