// Events, exactly as enumerated in Section 2.1 of the paper:
//
//   send_p(q, msg)    p sends msg to q
//   recv_p(q, msg)    p receives msg from q
//   do_p(alpha)       p executes coordination action alpha
//   init_p(alpha)     p initiates alpha (at most once per run, only at the
//                     action's owner)
//   crash_p           p fails (last event in p's history, R4)
//   suspect_p(S)      standard failure-detector report "S are faulty" (§2.2)
//   suspect_p(S, k)   generalized report "at least k processes in S are
//                     faulty" (§4)
//
// An Event is a value: histories are sequences of Events, runs are tuples of
// histories, and both knowledge (indistinguishability of local histories)
// and every spec checker operate on these values.  We use one flat struct
// with a kind tag instead of std::variant: every consumer switches on the
// kind anyway, and a flat struct hashes and compares cheaply.
#pragma once

#include <cstdint>
#include <string>

#include "udc/common/check.h"
#include "udc/common/proc_set.h"
#include "udc/common/types.h"
#include "udc/event/message.h"

namespace udc {

enum class EventKind : std::uint8_t {
  kSend,
  kRecv,
  kDo,
  kInit,
  kCrash,
  kSuspect,     // standard report suspect_p(S)
  kSuspectGen,  // generalized report suspect_p(S, k)
};

struct Event {
  EventKind kind = EventKind::kCrash;
  ProcessId peer = kInvalidProcess;  // kSend: recipient; kRecv: sender
  Message msg;                       // kSend / kRecv payload
  ActionId action = kInvalidAction;  // kDo / kInit
  ProcSet suspects;                  // kSuspect / kSuspectGen: the set S
  std::int32_t k = 0;                // kSuspectGen: the count k

  // -- factories (the only sanctioned way to build events) ------------------
  static Event send(ProcessId to, Message msg) {
    Event e;
    e.kind = EventKind::kSend;
    e.peer = to;
    e.msg = std::move(msg);
    return e;
  }
  static Event recv(ProcessId from, Message msg) {
    Event e;
    e.kind = EventKind::kRecv;
    e.peer = from;
    e.msg = std::move(msg);
    return e;
  }
  static Event do_action(ActionId a) {
    Event e;
    e.kind = EventKind::kDo;
    e.action = a;
    return e;
  }
  static Event init(ActionId a) {
    Event e;
    e.kind = EventKind::kInit;
    e.action = a;
    return e;
  }
  static Event crash() { return Event{}; }
  static Event suspect(ProcSet s) {
    Event e;
    e.kind = EventKind::kSuspect;
    e.suspects = s;
    return e;
  }
  static Event suspect_gen(ProcSet s, std::int32_t k) {
    UDC_CHECK(k >= 0 && k <= s.size(), "generalized report needs k <= |S|");
    Event e;
    e.kind = EventKind::kSuspectGen;
    e.suspects = s;
    e.k = k;
    return e;
  }

  bool is_failure_detector_event() const {
    return kind == EventKind::kSuspect || kind == EventKind::kSuspectGen;
  }

  friend bool operator==(const Event&, const Event&) = default;

  std::string to_string() const;

  std::uint64_t hash() const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(kind));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(peer)));
    mix(MessageHash{}(msg));
    mix(static_cast<std::uint64_t>(action));
    mix(suspects.bits());
    mix(static_cast<std::uint64_t>(k));
    return h;
  }
};

}  // namespace udc
