// Name-indexed factories for protocols and detectors.
//
// Witness files (chaos/witness.h) must be self-contained: a saved violation
// names its protocol and detector as strings, and replay resolves them back
// to factories here.  udc_explore and the chaos tools share this registry so
// one spelling works everywhere.  Unknown names throw InvariantViolation
// (guarded mains turn that into exit 1 with the name in the message).
#pragma once

#include <string>
#include <vector>

#include "udc/sim/system_factory.h"

namespace udc {

// `t` parameterizes the generalized detector/protocol family; detectors
// that don't use it ignore it.  "none" returns a null OracleFactory (the
// no-failure-detector context).
OracleFactory oracle_factory_by_name(const std::string& name, int t);
ProtocolFactory protocol_factory_by_name(const std::string& name, int t);

// Registered spellings, for usage() messages.
std::vector<std::string> known_oracle_names();
std::vector<std::string> known_protocol_names();

}  // namespace udc
