#include "udc/chaos/lying_oracle.h"

namespace udc {

LyingOracle::LyingOracle(std::unique_ptr<FdOracle> inner,
                         std::vector<LieDirective> lies)
    : inner_(std::move(inner)), lies_(std::move(lies)) {}

void LyingOracle::begin_run(const CrashPlan& plan, std::uint64_t seed) {
  n_ = plan.n();
  told_.assign(lies_.size(), ProcSet());
  if (inner_) inner_->begin_run(plan, seed);
}

std::optional<Event> LyingOracle::report(ProcessId p, Time now) {
  // Wrong-suspicion lies take priority over the inner oracle: the fabricated
  // report must land even if the honest detector had nothing to say.
  for (std::size_t i = 0; i < lies_.size(); ++i) {
    const LieDirective& l = lies_[i];
    if (l.kind != LieDirective::Kind::kWrongSuspicion) continue;
    if (!matches(l, p, now) || told_[i].contains(p)) continue;
    told_[i].insert(p);
    return Event::suspect(l.accused);
  }
  if (!inner_) return std::nullopt;
  std::optional<Event> ev = inner_->report(p, now);
  if (!ev) return std::nullopt;
  for (const LieDirective& l : lies_) {
    if (l.kind == LieDirective::Kind::kSuppress && matches(l, p, now)) {
      // Swallowed: the inner oracle believes it emitted, so change-driven
      // detectors never retry — the suppression outlives the window.
      return std::nullopt;
    }
  }
  return ev;
}

OracleFactoryFn lying_oracle_factory(OracleFactoryFn inner_factory,
                                     std::vector<LieDirective> lies) {
  if (lies.empty()) return inner_factory;
  return [inner_factory = std::move(inner_factory),
          lies = std::move(lies)]() -> std::unique_ptr<FdOracle> {
    return std::make_unique<LyingOracle>(
        inner_factory ? inner_factory() : nullptr, lies);
  };
}

}  // namespace udc
