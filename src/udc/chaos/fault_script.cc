#include "udc/chaos/fault_script.h"

#include <algorithm>
#include <sstream>

#include "udc/common/check.h"
#include "udc/common/parse_num.h"

namespace udc {

bool operator==(const CrashInjection& a, const CrashInjection& b) {
  return a.victim == b.victim && a.at == b.at;
}
bool operator==(const PartitionWindow& a, const PartitionWindow& b) {
  return a.senders == b.senders && a.recipients == b.recipients &&
         a.from == b.from && a.heal == b.heal;
}
bool operator==(const SilenceWindow& a, const SilenceWindow& b) {
  return a.from == b.from && a.to == b.to && a.begin == b.begin &&
         a.end == b.end;
}
bool operator==(const BurstSegment& a, const BurstSegment& b) {
  return a.begin == b.begin && a.end == b.end &&
         a.p_good_to_bad == b.p_good_to_bad &&
         a.p_bad_to_good == b.p_bad_to_good;
}
bool operator==(const LieDirective& a, const LieDirective& b) {
  return a.kind == b.kind && a.observer == b.observer && a.begin == b.begin &&
         a.end == b.end && a.accused == b.accused;
}
bool operator==(const StorageFault& a, const StorageFault& b) {
  return a.kind == b.kind && a.victim == b.victim && a.begin == b.begin &&
         a.end == b.end;
}

CrashPlan FaultScript::crash_plan(int n) const {
  std::vector<std::optional<Time>> times(static_cast<std::size_t>(n),
                                         std::nullopt);
  for (const CrashInjection& c : crashes) {
    UDC_CHECK(c.victim >= 0 && c.victim < n,
              "fault script crashes out-of-range process");
    UDC_CHECK(c.at >= 1, "crash injection time must be >= 1");
    auto& slot = times[static_cast<std::size_t>(c.victim)];
    if (!slot || c.at < *slot) slot = c.at;
  }
  return CrashPlan(n, std::move(times));
}

bool FaultScript::references_process_at_or_above(ProcessId n) const {
  ProcSet high = ProcSet::full(kMaxProcesses) - ProcSet::full(n);
  for (const CrashInjection& c : crashes) {
    if (c.victim >= n) return true;
  }
  for (const PartitionWindow& w : partitions) {
    if (!((w.senders | w.recipients) & high).empty()) return true;
  }
  for (const SilenceWindow& s : silences) {
    if (s.from >= n || s.to >= n) return true;
  }
  for (const LieDirective& l : lies) {
    if (l.observer >= n) return true;
    if (!(l.accused & high).empty()) return true;
  }
  for (const StorageFault& f : storage_faults) {
    if (f.victim >= n) return true;
  }
  return false;
}

namespace {

const char* storage_kind_token(StorageFault::Kind k) {
  switch (k) {
    case StorageFault::Kind::kTornWrite: return "torn";
    case StorageFault::Kind::kTruncate: return "truncate";
    case StorageFault::Kind::kBitFlip: return "bitflip";
    case StorageFault::Kind::kShortRead: return "shortread";
    case StorageFault::Kind::kSyncFail: return "syncfail";
  }
  return "?";
}

StorageFault::Kind parse_storage_kind(const std::string& token) {
  if (token == "torn") return StorageFault::Kind::kTornWrite;
  if (token == "truncate") return StorageFault::Kind::kTruncate;
  if (token == "bitflip") return StorageFault::Kind::kBitFlip;
  if (token == "shortread") return StorageFault::Kind::kShortRead;
  if (token == "syncfail") return StorageFault::Kind::kSyncFail;
  UDC_CHECK(false, "unknown storage fault kind in fault script: " + token);
}

}  // namespace

std::string FaultScript::format() const {
  std::ostringstream out;
  for (const CrashInjection& c : crashes) {
    out << "crash victim=" << c.victim << " at=" << c.at << '\n';
  }
  for (const PartitionWindow& w : partitions) {
    out << "partition senders=" << w.senders.bits()
        << " recipients=" << w.recipients.bits() << " from=" << w.from
        << " heal=" << w.heal << '\n';
  }
  for (const SilenceWindow& s : silences) {
    out << "silence from=" << s.from << " to=" << s.to << " begin=" << s.begin
        << " end=" << s.end << '\n';
  }
  for (const BurstSegment& b : bursts) {
    std::ostringstream num;  // round-trip exact doubles via hexfloat
    num << std::hexfloat << b.p_good_to_bad << ' ' << b.p_bad_to_good;
    out << "burst begin=" << b.begin << " end=" << b.end << " gb=";
    std::string both = num.str();
    auto space = both.find(' ');
    out << both.substr(0, space) << " bg=" << both.substr(space + 1) << '\n';
  }
  for (const LieDirective& l : lies) {
    out << "lie kind="
        << (l.kind == LieDirective::Kind::kWrongSuspicion ? "wrong"
                                                          : "suppress")
        << " observer=" << l.observer << " begin=" << l.begin
        << " end=" << l.end << " accused=" << l.accused.bits() << '\n';
  }
  for (const StorageFault& f : storage_faults) {
    out << "storage kind=" << storage_kind_token(f.kind)
        << " victim=" << f.victim << " begin=" << f.begin << " end=" << f.end
        << '\n';
  }
  return out.str();
}

namespace {

// Reads "key=value" and returns value; enforces the expected key.
std::string expect_field(std::istringstream& in, const std::string& key) {
  std::string token;
  UDC_CHECK(static_cast<bool>(in >> token),
            "fault script truncated, wanted " + key);
  auto eq = token.find('=');
  UDC_CHECK(eq != std::string::npos && token.substr(0, eq) == key,
            "fault script expected field '" + key + "', got '" + token + "'");
  return token.substr(eq + 1);
}

}  // namespace

FaultScript FaultScript::parse(const std::string& text) {
  FaultScript script;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    if (kind == "crash") {
      CrashInjection c;
      c.victim = static_cast<ProcessId>(parse_int(expect_field(in, "victim"), "crash victim"));
      c.at = parse_i64(expect_field(in, "at"), "crash time");
      script.crashes.push_back(c);
    } else if (kind == "partition") {
      PartitionWindow w;
      w.senders = ProcSet(parse_u64(expect_field(in, "senders"), "partition senders"));
      w.recipients = ProcSet(parse_u64(expect_field(in, "recipients"), "partition recipients"));
      w.from = parse_i64(expect_field(in, "from"), "partition from");
      w.heal = parse_i64(expect_field(in, "heal"), "partition heal");
      script.partitions.push_back(w);
    } else if (kind == "silence") {
      SilenceWindow s;
      s.from = static_cast<ProcessId>(parse_int(expect_field(in, "from"), "silence sender"));
      s.to = static_cast<ProcessId>(parse_int(expect_field(in, "to"), "silence recipient"));
      s.begin = parse_i64(expect_field(in, "begin"), "silence begin");
      s.end = parse_i64(expect_field(in, "end"), "silence end");
      script.silences.push_back(s);
    } else if (kind == "burst") {
      BurstSegment b;
      b.begin = parse_i64(expect_field(in, "begin"), "burst begin");
      b.end = parse_i64(expect_field(in, "end"), "burst end");
      b.p_good_to_bad = parse_f64(expect_field(in, "gb"), "burst gb");
      b.p_bad_to_good = parse_f64(expect_field(in, "bg"), "burst bg");
      script.bursts.push_back(b);
    } else if (kind == "lie") {
      LieDirective l;
      std::string k = expect_field(in, "kind");
      UDC_CHECK(k == "wrong" || k == "suppress",
                "unknown lie kind in fault script: " + k);
      l.kind = k == "wrong" ? LieDirective::Kind::kWrongSuspicion
                            : LieDirective::Kind::kSuppress;
      l.observer =
          static_cast<ProcessId>(parse_int(expect_field(in, "observer"), "lie observer"));
      l.begin = parse_i64(expect_field(in, "begin"), "lie begin");
      l.end = parse_i64(expect_field(in, "end"), "lie end");
      l.accused = ProcSet(parse_u64(expect_field(in, "accused"), "lie accused"));
      script.lies.push_back(l);
    } else if (kind == "storage") {
      StorageFault f;
      f.kind = parse_storage_kind(expect_field(in, "kind"));
      f.victim = static_cast<ProcessId>(
          parse_int(expect_field(in, "victim"), "storage victim"));
      f.begin = parse_i64(expect_field(in, "begin"), "storage begin");
      f.end = parse_i64(expect_field(in, "end"), "storage end");
      script.storage_faults.push_back(f);
    } else {
      UDC_CHECK(false, "unknown fault script line kind: " + kind);
    }
  }
  return script;
}

// ---------------------------------------------------------------------------
// ScriptDropPolicy
// ---------------------------------------------------------------------------

ScriptDropPolicy::ScriptDropPolicy(FaultScript script, double background_drop)
    : script_(std::move(script)), background_drop_(background_drop) {}

bool ScriptDropPolicy::drop(ProcessId from, ProcessId to, const Message&,
                            Time now, Rng& rng) {
  for (const PartitionWindow& w : script_.partitions) {
    if (now >= w.from && now < w.heal && w.senders.contains(from) &&
        w.recipients.contains(to)) {
      return true;
    }
  }
  for (const SilenceWindow& s : script_.silences) {
    if (from == s.from && to == s.to && now >= s.begin && now <= s.end) {
      return true;
    }
  }
  for (const BurstSegment& b : script_.bursts) {
    if (now < b.begin || now > b.end) continue;
    auto key = static_cast<std::size_t>(from) * kMaxProcesses +
               static_cast<std::size_t>(to);
    if (burst_bad_.size() <= key) burst_bad_.resize(key + 1, false);
    bool was_bad = burst_bad_[key];
    burst_bad_[key] =
        was_bad ? !rng.chance(b.p_bad_to_good) : rng.chance(b.p_good_to_bad);
    if (was_bad) return true;
  }
  return background_drop_ > 0 && rng.chance(background_drop_);
}

std::shared_ptr<DropPolicy> ScriptDropPolicy::clone() const {
  // Fresh Markov state; the script itself is immutable configuration.
  return std::make_shared<ScriptDropPolicy>(script_, background_drop_);
}

// ---------------------------------------------------------------------------
// Random generation
// ---------------------------------------------------------------------------

namespace {

Time draw_time(Rng& rng, Time lo, Time hi) {
  if (hi < lo) hi = lo;
  return lo + static_cast<Time>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

ProcessId draw_proc(Rng& rng, int n) {
  return static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n)));
}

// Non-empty proper-or-full subset of {0..n-1}.
ProcSet draw_set(Rng& rng, int n) {
  ProcSet s;
  do {
    s = ProcSet(rng.next() & ProcSet::full(n).bits());
  } while (s.empty());
  return s;
}

}  // namespace

FaultScript generate_fault_script(const ScriptGenOptions& opts,
                                  std::uint64_t seed) {
  UDC_CHECK(opts.n >= 2 && opts.n <= kMaxProcesses,
            "script generation needs 2 <= n <= 64");
  UDC_CHECK(opts.horizon >= 2, "script generation needs a horizon >= 2");
  Rng rng(seed ^ 0x63686165u /* "chae" */);
  FaultScript script;

  const Time crash_hi = std::max<Time>(
      1, static_cast<Time>(static_cast<double>(opts.horizon) *
                           opts.crash_window_frac));
  int n_crashes =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opts.max_crashes) + 1));
  ProcSet victims;
  for (int i = 0; i < n_crashes; ++i) {
    ProcessId v = draw_proc(rng, opts.n);
    if (victims.contains(v)) continue;  // one crash per victim
    victims.insert(v);
    script.crashes.push_back(CrashInjection{v, draw_time(rng, 1, crash_hi)});
  }

  int n_parts = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(opts.max_partitions) + 1));
  for (int i = 0; i < n_parts; ++i) {
    PartitionWindow w;
    w.senders = draw_set(rng, opts.n);
    w.recipients = draw_set(rng, opts.n);
    w.from = draw_time(rng, 0, opts.horizon / 2);
    // Half the partitions heal, half persist to the horizon.
    w.heal = rng.chance(0.5) ? draw_time(rng, w.from + 1, opts.horizon)
                             : kTimeMax;
    script.partitions.push_back(w);
  }

  int n_sil = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(opts.max_silences) + 1));
  for (int i = 0; i < n_sil; ++i) {
    SilenceWindow s;
    s.from = draw_proc(rng, opts.n);
    do {
      s.to = draw_proc(rng, opts.n);
    } while (s.to == s.from);
    s.begin = draw_time(rng, 0, opts.horizon / 2);
    s.end = rng.chance(0.5) ? draw_time(rng, s.begin, opts.horizon) : kTimeMax;
    script.silences.push_back(s);
  }

  int n_bursts = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(opts.max_bursts) + 1));
  for (int i = 0; i < n_bursts; ++i) {
    BurstSegment b;
    b.begin = draw_time(rng, 0, opts.horizon / 2);
    b.end = draw_time(rng, b.begin, opts.horizon);
    b.p_good_to_bad = 0.1 + 0.4 * rng.next_double();
    b.p_bad_to_good = 0.1 + 0.4 * rng.next_double();
    script.bursts.push_back(b);
  }

  int n_lies = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(opts.max_lies) + 1));
  for (int i = 0; i < n_lies; ++i) {
    LieDirective l;
    l.kind = rng.chance(0.5) ? LieDirective::Kind::kWrongSuspicion
                             : LieDirective::Kind::kSuppress;
    l.observer = rng.chance(0.5) ? kInvalidProcess : draw_proc(rng, opts.n);
    l.begin = draw_time(rng, 1, opts.horizon / 2);
    l.end = rng.chance(0.5) ? draw_time(rng, l.begin, opts.horizon) : kTimeMax;
    if (l.kind == LieDirective::Kind::kWrongSuspicion) {
      l.accused = draw_set(rng, opts.n);
    }
    script.lies.push_back(l);
  }

  int n_storage = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(opts.max_storage_faults) + 1));
  for (int i = 0; i < n_storage; ++i) {
    StorageFault f;
    f.kind = static_cast<StorageFault::Kind>(rng.next_below(5));
    f.victim = rng.chance(0.5) ? kInvalidProcess : draw_proc(rng, opts.n);
    f.begin = draw_time(rng, 0, opts.horizon / 2);
    f.end = rng.chance(0.5) ? draw_time(rng, f.begin + 1, opts.horizon)
                            : kTimeMax;
    script.storage_faults.push_back(f);
  }

  return script;
}

}  // namespace udc
