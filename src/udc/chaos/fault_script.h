// FaultScript: a composable, seed-deterministic description of everything
// an adversary may do to one simulated run.
//
// The paper's impossibility arguments (the † cells of Table 1, the converse
// of Thm 3.6) quantify over adversaries: "there EXISTS a failure/loss
// pattern breaking the spec".  A FaultScript is the machine form of one such
// pattern — a plain value that can be generated at random, mutated by the
// shrinker, serialized into a witness file, and replayed bit-identically:
//
//   * timed crash injections             (the failure pattern F)
//   * channel partitions with heal times (scheduled fairness violations)
//   * per-link silence windows           (one ordered channel goes dark)
//   * Gilbert-Elliott burst segments     (correlated loss episodes)
//   * lying failure-detector directives  (an oracle that violates its own
//     advertised class at scripted moments — wrong suspicions, suppressed
//     suspicions — so the belt-and-suspenders property checkers in
//     fd/properties.h are themselves exercised; see chaos/lying_oracle.h)
//
// Everything is ordinary data: two scripts are equal iff their fields are,
// and injection_count() is the shrinker's size metric.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/fd/oracle.h"
#include "udc/net/network.h"

namespace udc {

struct CrashInjection {
  ProcessId victim = 0;
  Time at = 1;
};

// Messages from `senders` to `recipients` are dropped during [from, heal);
// heal = kTimeMax means the partition never heals.
struct PartitionWindow {
  ProcSet senders;
  ProcSet recipients;
  Time from = 0;
  Time heal = kTimeMax;
};

// One ordered channel goes completely dark during [begin, end].
struct SilenceWindow {
  ProcessId from = 0;
  ProcessId to = 0;
  Time begin = 0;
  Time end = kTimeMax;
};

// Gilbert-Elliott correlated loss on EVERY channel during [begin, end]
// (outside the window the chains are frozen and nothing is dropped).
struct BurstSegment {
  Time begin = 0;
  Time end = kTimeMax;
  double p_good_to_bad = 0.2;
  double p_bad_to_good = 0.3;
};

// A scripted failure-detector lie (interpreted by LyingOracle):
//   kWrongSuspicion — once inside [begin, end], the observer's next report
//     slot is hijacked to announce `accused` as suspected (§2.2 semantics:
//     the report REPLACES Suspects_p, so accusing live processes breaks
//     accuracy, and accusing every correct process breaks even weak
//     accuracy).
//   kSuppress — reports the inner oracle emits inside [begin, end] are
//     swallowed; a crash the oracle would have announced there goes
//     unreported, breaking completeness.
struct LieDirective {
  enum class Kind { kWrongSuspicion, kSuppress };
  Kind kind = Kind::kWrongSuspicion;
  ProcessId observer = kInvalidProcess;  // kInvalidProcess = every observer
  Time begin = 0;
  Time end = kTimeMax;
  ProcSet accused;  // kWrongSuspicion only
};

// A scripted attack on a process's durable log (interpreted by the live
// runtime's store layer when a worker is hard-killed inside [begin, end);
// simulated runs have no disk and ignore these):
//   kTornWrite — the append in flight at the kill lands only partially
//   kTruncate  — machine-crash semantics: the un-fsync'd tail is lost
//   kBitFlip   — one byte of the on-disk WAL is flipped
//   kShortRead — recovery's reads return a few bytes at a time
//   kSyncFail  — fsync silently does nothing while the window is open
struct StorageFault {
  enum class Kind { kTornWrite, kTruncate, kBitFlip, kShortRead, kSyncFail };
  Kind kind = Kind::kTornWrite;
  ProcessId victim = kInvalidProcess;  // kInvalidProcess = every process
  Time begin = 0;
  Time end = kTimeMax;
};

struct FaultScript {
  std::vector<CrashInjection> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<SilenceWindow> silences;
  std::vector<BurstSegment> bursts;
  std::vector<LieDirective> lies;
  std::vector<StorageFault> storage_faults;

  // The shrinker's size metric: total number of scripted injections.
  std::size_t injection_count() const {
    return crashes.size() + partitions.size() + silences.size() +
           bursts.size() + lies.size() + storage_faults.size();
  }
  bool empty() const { return injection_count() == 0; }

  // The failure pattern the script encodes.  Multiple injections against the
  // same victim collapse to the earliest (a process crashes once).  Throws
  // InvariantViolation if a victim id is outside [0, n).
  CrashPlan crash_plan(int n) const;

  // True if the script mentions a process id >= n (used by the shrinker's
  // shrink-n step and by witness validation).
  bool references_process_at_or_above(ProcessId n) const;

  // One line per injection, parse-back exact (see chaos/witness.h for the
  // framing used in witness files).
  std::string format() const;
  static FaultScript parse(const std::string& text);

  friend bool operator==(const FaultScript&, const FaultScript&) = default;
};

bool operator==(const CrashInjection&, const CrashInjection&);
bool operator==(const PartitionWindow&, const PartitionWindow&);
bool operator==(const SilenceWindow&, const SilenceWindow&);
bool operator==(const BurstSegment&, const BurstSegment&);
bool operator==(const LieDirective&, const LieDirective&);
bool operator==(const StorageFault&, const StorageFault&);

// DropPolicy realizing the script's channel faults on top of a background
// i.i.d. loss rate.  Stateful (the burst segments carry per-channel Markov
// chains), hence cloned per simulation via DropPolicy::clone().
class ScriptDropPolicy final : public DropPolicy {
 public:
  ScriptDropPolicy(FaultScript script, double background_drop);

  bool drop(ProcessId from, ProcessId to, const Message& msg, Time now,
            Rng& rng) override;
  std::shared_ptr<DropPolicy> clone() const override;

 private:
  FaultScript script_;
  double background_drop_;
  std::vector<bool> burst_bad_;  // per ordered channel, shared by segments
};

// ---------------------------------------------------------------------------
// Seed-deterministic random generation, the raw material of the chaos
// search.  Counts are drawn uniformly in [0, max_*]; windows land in
// [1, horizon].  Same (options, seed) => same script, bit for bit.
// ---------------------------------------------------------------------------
struct ScriptGenOptions {
  int n = 4;
  Time horizon = 240;
  int max_crashes = 2;     // keep <= the failure bound t of the scenario
  int max_partitions = 2;
  int max_silences = 2;
  int max_bursts = 1;
  int max_lies = 0;        // lies only make sense when a detector is present
  int max_storage_faults = 0;  // only the live durable runtime has a disk
  // Crash times are drawn from [1, horizon * crash_window_frac] — early
  // crashes are the interesting ones (late crashes land after the protocol
  // already finished and the grace window excuses them).
  double crash_window_frac = 0.5;
};

FaultScript generate_fault_script(const ScriptGenOptions& opts,
                                  std::uint64_t seed);

}  // namespace udc
