#include "udc/chaos/registry.h"

#include "udc/common/check.h"
#include "udc/consensus/ct_strong.h"
#include "udc/consensus/rotating.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_atd.h"
#include "udc/coord/udc_fip.h"
#include "udc/coord/udc_generalized.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_reliable.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/atd.h"
#include "udc/fd/generalized.h"

namespace udc {

OracleFactory oracle_factory_by_name(const std::string& name, int t) {
  if (name == "none") return nullptr;
  if (name == "perfect") {
    return [] { return std::make_unique<PerfectOracle>(4); };
  }
  if (name == "strong") {
    return [] { return std::make_unique<StrongOracle>(4, 0.2); };
  }
  // The four perpetual Chandra-Toueg classes: P and S above; Q is weak
  // completeness with NO false suspicions (strong accuracy), W adds them.
  if (name == "quasi") {
    return [] { return std::make_unique<WeakOracle>(4, 0.0); };
  }
  if (name == "weak") {
    return [] { return std::make_unique<WeakOracle>(4, 0.2); };
  }
  if (name == "impermanent") {
    return [] { return std::make_unique<ImpermanentStrongOracle>(4); };
  }
  if (name == "ev-strong") {
    return [] { return std::make_unique<EventuallyStrongOracle>(4, 60, 0.3); };
  }
  if (name == "ev-weak") {
    return [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.3); };
  }
  if (name == "tuseful") {
    return [t] { return std::make_unique<TUsefulOracle>(t, 4, 1); };
  }
  if (name == "trivial") {
    return [t] { return std::make_unique<TrivialGeneralizedOracle>(t, 2); };
  }
  if (name == "atd") return [] { return std::make_unique<AtdOracle>(6); };
  UDC_CHECK(false, "unknown detector name: " + name);
}

ProtocolFactory protocol_factory_by_name(const std::string& name, int t) {
  if (name == "strongfd") {
    return [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); };
  }
  if (name == "fip") {
    return [](ProcessId) { return std::make_unique<FipUdcProcess>(); };
  }
  if (name == "nudc") {
    return [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  }
  if (name == "reliable") {
    return [](ProcessId) { return std::make_unique<UdcReliableProcess>(); };
  }
  if (name == "generalized") {
    return [t](ProcessId) {
      return std::make_unique<UdcGeneralizedProcess>(t);
    };
  }
  if (name == "atd") {
    return [](ProcessId) { return std::make_unique<UdcAtdProcess>(); };
  }
  if (name == "majority") {
    return [](ProcessId) { return std::make_unique<UdcMajorityProcess>(); };
  }
  UDC_CHECK(false, "unknown protocol name: " + name);
}

std::vector<std::string> known_oracle_names() {
  return {"none",    "perfect", "strong",  "quasi",   "weak",    "impermanent",
          "ev-strong", "ev-weak", "tuseful", "trivial", "atd"};
}

std::vector<std::string> known_protocol_names() {
  return {"strongfd", "fip", "nudc", "reliable", "generalized", "atd",
          "majority"};
}

}  // namespace udc
