#include "udc/chaos/chaos_engine.h"

#include <algorithm>

#include "udc/chaos/lying_oracle.h"
#include "udc/chaos/registry.h"
#include "udc/common/check.h"
#include "udc/coord/action.h"
#include "udc/sim/simulator.h"

namespace udc {

const char* chaos_spec_name(ChaosScenario::Spec s) {
  return s == ChaosScenario::Spec::kUdc ? "udc" : "nudc";
}

ChaosScenario::Spec chaos_spec_by_name(const std::string& name) {
  if (name == "udc") return ChaosScenario::Spec::kUdc;
  if (name == "nudc") return ChaosScenario::Spec::kNudc;
  UDC_CHECK(false, "unknown spec name: " + name);
}

ChaosOutcome run_scenario(const ChaosScenario& scenario,
                          const FaultScript& script) {
  UDC_CHECK(scenario.n >= 2 && scenario.n <= kMaxProcesses,
            "chaos scenario n out of range");
  UDC_CHECK(scenario.horizon >= 1, "chaos scenario horizon must be >= 1");
  UDC_CHECK(!script.references_process_at_or_above(scenario.n),
            "fault script references a process outside the scenario");

  SimConfig config;
  config.n = scenario.n;
  config.horizon = scenario.horizon;
  config.seed = scenario.seed;
  config.channel.max_delay = scenario.max_delay;
  // The script policy subsumes the background i.i.d. rate; with an empty
  // script it draws exactly like IidDropPolicy, so unscripted scenarios
  // regenerate the stock channel behavior bit-identically.
  config.channel.custom_policy =
      std::make_shared<ScriptDropPolicy>(script, scenario.drop);

  OracleFactory oracle_factory = lying_oracle_factory(
      oracle_factory_by_name(scenario.detector, scenario.t), script.lies);
  ProtocolFactory protocol =
      protocol_factory_by_name(scenario.protocol, scenario.t);

  auto workload = make_workload(scenario.n, scenario.actions_per_process,
                                scenario.init_start, scenario.init_spacing);
  auto actions = workload_actions(workload);
  CrashPlan plan = script.crash_plan(scenario.n);

  std::unique_ptr<FdOracle> oracle;
  if (oracle_factory) oracle = oracle_factory();
  SimResult result =
      simulate(config, plan, oracle.get(), workload, protocol);

  ChaosOutcome out{std::move(result.run), {}, {}, false};
  out.report = scenario.spec == ChaosScenario::Spec::kUdc
                   ? check_udc(out.run, actions, scenario.grace)
                   : check_nudc(out.run, actions, scenario.grace);
  out.fd_report = check_fd_properties(out.run, scenario.grace);
  out.violated = !out.report.achieved();
  return out;
}

ChaosSearchResult search_violation(const ChaosScenario& scenario,
                                   const ChaosSearchOptions& options) {
  ChaosSearchResult result;
  ScriptGenOptions gen = options.gen;
  gen.n = scenario.n;
  gen.horizon = scenario.horizon;
  // A legitimate witness for a cell with failure bound t may crash at most
  // t processes.
  gen.max_crashes = std::min(gen.max_crashes, scenario.t);

  for (int i = 0; i < options.iterations; ++i) {
    if (options.budget.deadline_expired() ||
        options.budget.runs_exhausted(
            static_cast<std::size_t>(result.iterations_run))) {
      result.status = BudgetStatus::kBudgetExceeded;
      return result;
    }
    FaultScript script =
        generate_fault_script(gen, options.seed + static_cast<std::uint64_t>(i));
    ChaosOutcome outcome = run_scenario(scenario, script);
    ++result.iterations_run;
    if (outcome.violated) {
      result.witness =
          ChaosWitness{scenario, std::move(script), std::move(outcome.report)};
      return result;
    }
  }
  return result;
}

namespace {

// Re-runs the candidate; accepts it into `best` iff it still violates.
bool try_candidate(ChaosWitness& best, const ChaosScenario& scenario,
                   const FaultScript& script) {
  ChaosOutcome outcome = run_scenario(scenario, script);
  if (!outcome.violated) return false;
  best.scenario = scenario;
  best.script = script;
  best.report = std::move(outcome.report);
  return true;
}

// Tries removing every element of `vec`, highest index first (so earlier
// indices stay valid after an accepted removal).  Returns true on progress.
template <typename T>
bool prune_vector(ChaosWitness& best, std::vector<T> FaultScript::* member) {
  bool improved = false;
  for (std::size_t i = (best.script.*member).size(); i-- > 0;) {
    FaultScript candidate = best.script;
    (candidate.*member).erase((candidate.*member).begin() +
                              static_cast<std::ptrdiff_t>(i));
    if (try_candidate(best, best.scenario, candidate)) improved = true;
  }
  return improved;
}

}  // namespace

ChaosWitness shrink_witness(const ChaosWitness& witness) {
  ChaosWitness best = witness;
  bool improved = true;
  while (improved) {
    improved = false;

    // 1. Drop injections one at a time (ddmin at granularity 1 — scripts
    // are small enough that the quadratic pass beats the bookkeeping of
    // full delta debugging).
    improved |= prune_vector(best, &FaultScript::crashes);
    improved |= prune_vector(best, &FaultScript::partitions);
    improved |= prune_vector(best, &FaultScript::silences);
    improved |= prune_vector(best, &FaultScript::bursts);
    improved |= prune_vector(best, &FaultScript::lies);
    improved |= prune_vector(best, &FaultScript::storage_faults);

    // 2. Truncate the horizon: big bites first.  The spec's grace window
    // makes obligations vacuous when the horizon gets too close to the
    // inits, so re-running is the arbiter of how far this can go.
    const Time h = best.scenario.horizon;
    for (Time candidate_h : {h / 2, (3 * h) / 4, h - std::max<Time>(1, h / 8)}) {
      if (candidate_h < 1 || candidate_h >= best.scenario.horizon) continue;
      ChaosScenario candidate = best.scenario;
      candidate.horizon = candidate_h;
      if (try_candidate(best, candidate, best.script)) {
        improved = true;
        break;
      }
    }

    // 3. Drop the highest-numbered process, when the script never mentions
    // it.  The workload regenerates for the smaller group, so the run is
    // different in kind — re-checking decides whether the violation
    // survives the amputation.
    if (best.scenario.n > 2 &&
        !best.script.references_process_at_or_above(best.scenario.n - 1)) {
      ChaosScenario candidate = best.scenario;
      candidate.n -= 1;
      candidate.t = std::min(candidate.t, candidate.n);
      if (try_candidate(best, candidate, best.script)) improved = true;
    }
  }
  return best;
}

}  // namespace udc
