// LyingOracle: a failure detector that violates its own advertised class at
// scripted moments.
//
// Oracles construct, checkers verify (fd/oracle.h) — which means the
// property checkers in fd/properties.h are load-bearing and must themselves
// be exercised: a checker that silently passes a corrupted detector would
// let every experiment report "as predicted" on garbage.  LyingOracle wraps
// any inner oracle and applies the LieDirectives of a FaultScript:
//
//   kWrongSuspicion — hijacks the observer's next free report slot inside
//     the window to announce `accused` as the suspect set.  Accusing a live
//     process breaks strong accuracy; accusing every correct process breaks
//     weak accuracy (no correct process is left unsuspected).
//   kSuppress — swallows reports the inner oracle emits inside the window.
//     Change-driven oracles believe they emitted and never re-announce, so
//     a crash reported there stays unreported past the window: strong
//     completeness breaks for that observer, weak completeness when every
//     observer is suppressed.
//
// The chaos suite asserts that for each perpetual class (P/S/Q/W) the
// corresponding checker flags the injected lie — no silent pass.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/fd/oracle.h"

namespace udc {

class LyingOracle final : public FdOracle {
 public:
  // `inner` may be null (lies on top of the no-detector context — only
  // kWrongSuspicion directives can fire then).
  LyingOracle(std::unique_ptr<FdOracle> inner, std::vector<LieDirective> lies);

  void begin_run(const CrashPlan& plan, std::uint64_t seed) override;
  std::optional<Event> report(ProcessId p, Time now) override;

 private:
  bool matches(const LieDirective& l, ProcessId p, Time now) const {
    return (l.observer == kInvalidProcess || l.observer == p) &&
           now >= l.begin && now <= l.end;
  }

  std::unique_ptr<FdOracle> inner_;
  std::vector<LieDirective> lies_;
  // told_[i] marks observers that already delivered wrong-suspicion lie i
  // (one fabricated report per directive per observer).
  std::vector<ProcSet> told_;
  int n_ = 0;
};

// Convenience: wraps `inner_factory` (may be null) so every run of a system
// generation gets a fresh LyingOracle over a fresh inner oracle.
using OracleFactoryFn = std::function<std::unique_ptr<FdOracle>()>;
OracleFactoryFn lying_oracle_factory(OracleFactoryFn inner_factory,
                                     std::vector<LieDirective> lies);

}  // namespace udc
