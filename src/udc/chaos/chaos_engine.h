// The chaos search driver: sweep generated fault scripts over a scenario
// hunting spec violations, then delta-debug any witness down to a minimal
// reproduction.
//
// The necessity direction of Table 1 says "for this protocol × channel × t
// cell there EXISTS an adversary breaking DC1–DC3" — the repo used to prove
// it with two hand-rolled adversaries.  The chaos engine searches the
// adversary space instead: generate_fault_script draws seed-deterministic
// scripts, run_scenario executes one against the scenario's protocol and
// checks the spec, and search_violation iterates until a violating script
// appears (or the budget trips).  shrink_witness then greedily removes
// injections, truncates the horizon, and drops processes while the
// violation persists, yielding the minimal witness that is serialized via
// chaos/witness.h and replayed bit-identically by tools/udc_replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/budget.h"
#include "udc/coord/spec.h"
#include "udc/event/run.h"
#include "udc/fd/properties.h"

namespace udc {

// Everything needed to regenerate one scripted run, serializable by name.
struct ChaosScenario {
  std::string protocol = "majority";  // chaos/registry.h spellings
  std::string detector = "none";
  int n = 5;
  int t = 2;              // failure bound (generalized family parameter)
  Time horizon = 240;
  Time grace = 80;        // finite-run grace window for the spec checkers
  double drop = 0.0;      // background i.i.d. loss under the script
  int max_delay = 3;
  std::uint64_t seed = 1;
  int actions_per_process = 1;  // make_workload(n, this, init_start, spacing)
  Time init_start = 5;
  Time init_spacing = 7;
  enum class Spec { kUdc, kNudc } spec = Spec::kUdc;
};

const char* chaos_spec_name(ChaosScenario::Spec s);
ChaosScenario::Spec chaos_spec_by_name(const std::string& name);

// One scripted simulation plus its verdicts.
struct ChaosOutcome {
  Run run;
  CoordReport report;         // the scenario's spec (UDC or nUDC)
  FdPropertyReport fd_report; // flags lying-oracle corruption
  bool violated = false;      // !report.achieved()
};

ChaosOutcome run_scenario(const ChaosScenario& scenario,
                          const FaultScript& script);

struct ChaosWitness {
  ChaosScenario scenario;
  FaultScript script;
  CoordReport report;
};

struct ChaosSearchOptions {
  int iterations = 64;
  std::uint64_t seed = 1;     // script-generation seed stream
  ScriptGenOptions gen;       // n/horizon are overwritten from the scenario
  Budget budget;              // deadline bounds the whole search
};

struct ChaosSearchResult {
  std::optional<ChaosWitness> witness;
  int iterations_run = 0;
  BudgetStatus status = BudgetStatus::kComplete;
};

// Runs generated scripts against the scenario until one violates the spec.
// Deterministic for a fixed (scenario, options.seed): iteration i uses
// script seed options.seed + i.
ChaosSearchResult search_violation(const ChaosScenario& scenario,
                                   const ChaosSearchOptions& options);

// Greedy delta-debugging to a fixpoint.  The result still violates the
// spec; its script has <= the input's injections, and its scenario's
// (n, horizon) are <= the input's.  Each candidate reduction is validated
// by re-running the scenario.
ChaosWitness shrink_witness(const ChaosWitness& witness);

}  // namespace udc
