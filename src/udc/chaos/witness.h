// Violation witnesses: self-contained text artifacts that replay
// bit-identically.
//
// A witness file carries the scenario (protocol/detector by registry name,
// the context knobs, the seed), the fault script, the spec verdict the
// search observed, and the full event trace of the violating run (via the
// trace.h parse-back format).  replay_witness() re-runs the scenario from
// scratch and demands (a) the regenerated trace equals the saved one byte
// for byte — runs are pure functions of (config, plan, workload, protocol),
// so any drift means the codebase changed semantics — and (b) the
// re-checked spec verdict matches the saved one.  The checked-in fixtures
// under tests/fixtures/ pin the known † cells of Table 1 this way.
#pragma once

#include <string>

#include "udc/chaos/chaos_engine.h"
#include "udc/common/check.h"

namespace udc {

// The on-disk schema version this build reads and writes.  The version is
// part of the magic line ("udc-witness v1"); parse_witness refuses any other
// version outright — a witness is a bit-exactness contract, and guessing at
// an unknown schema would replace a hard failure with a silent wrong answer.
// Bump only with a migration story for the checked-in fixtures.
inline constexpr int kWitnessFormatVersion = 1;

// Malformed or version-incompatible witness input.  Distinct from plain
// InvariantViolation so tools can separate "your input file is bad" (exit 2,
// like a usage error) from "udckit broke an internal contract" (exit 1).
// Derives from it so existing catch sites keep rejecting bad witnesses.
class WitnessFormatError : public InvariantViolation {
 public:
  explicit WitnessFormatError(const std::string& what)
      : InvariantViolation(what) {}
};

// Serializes witness + its violating run (regenerated if `run` is null).
std::string format_witness(const ChaosWitness& witness, const Run* run = nullptr);

struct ReplayResult {
  bool trace_matches = false;    // regenerated trace == saved trace
  bool verdict_matches = false;  // re-checked dc1/dc2/dc3 == saved verdict
  bool violated = false;         // the re-checked spec is violated
  ChaosWitness witness;          // the parsed scenario/script/saved verdict
  CoordReport rechecked;

  // A witness "reproduces" when the regenerated run and verdict are exactly
  // the saved ones and the spec still fails.
  bool reproduced() const {
    return trace_matches && verdict_matches && violated;
  }
};

// Parses and re-executes a witness file.  Throws WitnessFormatError on
// malformed or unknown-version input; replay divergence is reported in the
// result, not thrown.
ReplayResult replay_witness(const std::string& text);

// Parse only (no re-execution) — used by tools that want the scenario.
// Throws WitnessFormatError on malformed or unknown-version input.
ChaosWitness parse_witness(const std::string& text);

}  // namespace udc
