#include "udc/chaos/witness.h"

#include <sstream>

#include "udc/common/check.h"
#include "udc/common/parse_num.h"
#include "udc/event/trace.h"

namespace udc {

namespace {

constexpr const char* kMagicPrefix = "udc-witness v";

// Parse-path failures are the *file's* fault, not udckit's: they throw the
// typed WitnessFormatError so tools can exit 2 with a one-line diagnostic.
void format_check(bool cond, const std::string& msg) {
  if (!cond) throw WitnessFormatError("malformed witness: " + msg);
}

// The magic line doubles as the schema gate: any parsable version other
// than kWitnessFormatVersion is rejected by name, so a future v2 witness
// fails loudly on a v1 reader instead of being misread field by field.
void check_magic(const std::string& line) {
  format_check(line.rfind(kMagicPrefix, 0) == 0,
               "not a udc witness file (bad magic)");
  const std::string version = line.substr(std::string(kMagicPrefix).size());
  format_check(!version.empty() &&
                   version.find_first_not_of("0123456789") == std::string::npos,
               "bad version in magic line '" + line + "'");
  format_check(std::stoi(version) == kWitnessFormatVersion,
               "unsupported witness version v" + version + " (this build reads v" +
                   std::to_string(kWitnessFormatVersion) + ")");
}

std::string expect_field(std::istringstream& in, const std::string& key) {
  std::string token;
  format_check(static_cast<bool>(in >> token),
               "witness truncated, wanted " + key);
  auto eq = token.find('=');
  format_check(eq != std::string::npos && token.substr(0, eq) == key,
               "witness expected field '" + key + "', got '" + token + "'");
  return token.substr(eq + 1);
}

std::string format_double(double v) {
  std::ostringstream out;
  out << std::hexfloat << v;  // exact round-trip, locale-independent
  return out.str();
}

}  // namespace

std::string format_witness(const ChaosWitness& witness, const Run* run) {
  const ChaosScenario& sc = witness.scenario;
  std::ostringstream out;
  out << kMagicPrefix << kWitnessFormatVersion << '\n';
  out << "scenario protocol=" << sc.protocol << " detector=" << sc.detector
      << " n=" << sc.n << " t=" << sc.t << " horizon=" << sc.horizon
      << " grace=" << sc.grace << " drop=" << format_double(sc.drop)
      << " max_delay=" << sc.max_delay << " seed=" << sc.seed
      << " actions=" << sc.actions_per_process
      << " init_start=" << sc.init_start
      << " init_spacing=" << sc.init_spacing
      << " spec=" << chaos_spec_name(sc.spec) << '\n';
  out << "script injections=" << witness.script.injection_count() << '\n';
  out << witness.script.format();
  out << "end-script\n";
  out << "verdict dc1=" << witness.report.dc1 << " dc2=" << witness.report.dc2
      << " dc3=" << witness.report.dc3 << '\n';
  out << "trace\n";
  if (run != nullptr) {
    out << format_run(*run);
  } else {
    ChaosOutcome outcome = run_scenario(sc, witness.script);
    out << format_run(outcome.run);
  }
  out << "end-trace\n";
  return out.str();
}

namespace {

ChaosWitness parse_witness_impl(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  format_check(static_cast<bool>(std::getline(lines, line)),
               "empty witness file");
  check_magic(line);

  ChaosWitness witness;
  format_check(static_cast<bool>(std::getline(lines, line)),
               "witness truncated");
  {
    std::istringstream in(line);
    std::string token;
    in >> token;
    format_check(token == "scenario", "witness expected scenario line");
    ChaosScenario& sc = witness.scenario;
    sc.protocol = expect_field(in, "protocol");
    sc.detector = expect_field(in, "detector");
    sc.n = parse_int(expect_field(in, "n"), "scenario n");
    sc.t = parse_int(expect_field(in, "t"), "scenario t");
    sc.horizon = parse_i64(expect_field(in, "horizon"), "scenario horizon");
    sc.grace = parse_i64(expect_field(in, "grace"), "scenario grace");
    sc.drop = parse_f64(expect_field(in, "drop"), "scenario drop");
    sc.max_delay = parse_int(expect_field(in, "max_delay"), "scenario max_delay");
    sc.seed = parse_u64(expect_field(in, "seed"), "scenario seed");
    sc.actions_per_process = parse_int(expect_field(in, "actions"), "scenario actions");
    sc.init_start = parse_i64(expect_field(in, "init_start"), "scenario init_start");
    sc.init_spacing = parse_i64(expect_field(in, "init_spacing"), "scenario init_spacing");
    sc.spec = chaos_spec_by_name(expect_field(in, "spec"));
  }

  format_check(static_cast<bool>(std::getline(lines, line)) &&
                   line.rfind("script", 0) == 0,
               "witness expected script header");
  std::string script_text;
  for (;;) {
    format_check(static_cast<bool>(std::getline(lines, line)),
                 "witness script not terminated");
    if (line == "end-script") break;
    script_text += line;
    script_text += '\n';
  }
  witness.script = FaultScript::parse(script_text);

  format_check(static_cast<bool>(std::getline(lines, line)),
               "witness truncated");
  {
    std::istringstream in(line);
    std::string token;
    in >> token;
    format_check(token == "verdict", "witness expected verdict line");
    witness.report.dc1 = parse_int(expect_field(in, "dc1"), "verdict dc1") != 0;
    witness.report.dc2 = parse_int(expect_field(in, "dc2"), "verdict dc2") != 0;
    witness.report.dc3 = parse_int(expect_field(in, "dc3"), "verdict dc3") != 0;
  }
  return witness;
}

// Extracts the saved trace verbatim (between "trace" and "end-trace") and
// validates it as a run — R1-R4 on the saved side, before any re-run.
std::string extract_saved_trace(const std::string& text) {
  auto trace_begin = text.find("\ntrace\n");
  format_check(trace_begin != std::string::npos,
               "witness has no trace section");
  trace_begin += 7;  // past "\ntrace\n"
  auto trace_end = text.find("end-trace\n", trace_begin);
  format_check(trace_end != std::string::npos,
               "witness trace not terminated");
  std::string saved_trace = text.substr(trace_begin, trace_end - trace_begin);
  (void)parse_run(saved_trace);
  return saved_trace;
}

}  // namespace

ChaosWitness parse_witness(const std::string& text) {
  // Sub-parsers (scenario numbers, the script block, the trace block) signal
  // trouble as InvariantViolation; from here their failure is the input
  // file's fault, so it surfaces as the typed format error.
  try {
    return parse_witness_impl(text);
  } catch (const WitnessFormatError&) {
    throw;
  } catch (const InvariantViolation& e) {
    throw WitnessFormatError(std::string("malformed witness: ") + e.what());
  }
}

ReplayResult replay_witness(const std::string& text) {
  ReplayResult result;
  result.witness = parse_witness(text);

  std::string saved_trace;
  try {
    saved_trace = extract_saved_trace(text);
  } catch (const WitnessFormatError&) {
    throw;
  } catch (const InvariantViolation& e) {
    throw WitnessFormatError(std::string("malformed witness: ") + e.what());
  }

  ChaosOutcome outcome =
      run_scenario(result.witness.scenario, result.witness.script);
  result.rechecked = outcome.report;
  result.violated = !outcome.report.achieved();
  result.trace_matches = format_run(outcome.run) == saved_trace;
  result.verdict_matches =
      outcome.report.dc1 == result.witness.report.dc1 &&
      outcome.report.dc2 == result.witness.report.dc2 &&
      outcome.report.dc3 == result.witness.report.dc3;
  return result;
}

}  // namespace udc
