#include "udc/chaos/witness.h"

#include <sstream>

#include "udc/common/check.h"
#include "udc/common/parse_num.h"
#include "udc/event/trace.h"

namespace udc {

namespace {

constexpr const char* kMagic = "udc-witness v1";

std::string expect_field(std::istringstream& in, const std::string& key) {
  std::string token;
  UDC_CHECK(static_cast<bool>(in >> token),
            "witness truncated, wanted " + key);
  auto eq = token.find('=');
  UDC_CHECK(eq != std::string::npos && token.substr(0, eq) == key,
            "witness expected field '" + key + "', got '" + token + "'");
  return token.substr(eq + 1);
}

std::string format_double(double v) {
  std::ostringstream out;
  out << std::hexfloat << v;  // exact round-trip, locale-independent
  return out.str();
}

}  // namespace

std::string format_witness(const ChaosWitness& witness, const Run* run) {
  const ChaosScenario& sc = witness.scenario;
  std::ostringstream out;
  out << kMagic << '\n';
  out << "scenario protocol=" << sc.protocol << " detector=" << sc.detector
      << " n=" << sc.n << " t=" << sc.t << " horizon=" << sc.horizon
      << " grace=" << sc.grace << " drop=" << format_double(sc.drop)
      << " max_delay=" << sc.max_delay << " seed=" << sc.seed
      << " actions=" << sc.actions_per_process
      << " init_start=" << sc.init_start
      << " init_spacing=" << sc.init_spacing
      << " spec=" << chaos_spec_name(sc.spec) << '\n';
  out << "script injections=" << witness.script.injection_count() << '\n';
  out << witness.script.format();
  out << "end-script\n";
  out << "verdict dc1=" << witness.report.dc1 << " dc2=" << witness.report.dc2
      << " dc3=" << witness.report.dc3 << '\n';
  out << "trace\n";
  if (run != nullptr) {
    out << format_run(*run);
  } else {
    ChaosOutcome outcome = run_scenario(sc, witness.script);
    out << format_run(outcome.run);
  }
  out << "end-trace\n";
  return out.str();
}

ChaosWitness parse_witness(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  UDC_CHECK(static_cast<bool>(std::getline(lines, line)) && line == kMagic,
            "not a udc witness file (bad magic)");

  ChaosWitness witness;
  UDC_CHECK(static_cast<bool>(std::getline(lines, line)), "witness truncated");
  {
    std::istringstream in(line);
    std::string token;
    in >> token;
    UDC_CHECK(token == "scenario", "witness expected scenario line");
    ChaosScenario& sc = witness.scenario;
    sc.protocol = expect_field(in, "protocol");
    sc.detector = expect_field(in, "detector");
    sc.n = parse_int(expect_field(in, "n"), "scenario n");
    sc.t = parse_int(expect_field(in, "t"), "scenario t");
    sc.horizon = parse_i64(expect_field(in, "horizon"), "scenario horizon");
    sc.grace = parse_i64(expect_field(in, "grace"), "scenario grace");
    sc.drop = parse_f64(expect_field(in, "drop"), "scenario drop");
    sc.max_delay = parse_int(expect_field(in, "max_delay"), "scenario max_delay");
    sc.seed = parse_u64(expect_field(in, "seed"), "scenario seed");
    sc.actions_per_process = parse_int(expect_field(in, "actions"), "scenario actions");
    sc.init_start = parse_i64(expect_field(in, "init_start"), "scenario init_start");
    sc.init_spacing = parse_i64(expect_field(in, "init_spacing"), "scenario init_spacing");
    sc.spec = chaos_spec_by_name(expect_field(in, "spec"));
  }

  UDC_CHECK(static_cast<bool>(std::getline(lines, line)) &&
                line.rfind("script", 0) == 0,
            "witness expected script header");
  std::string script_text;
  for (;;) {
    UDC_CHECK(static_cast<bool>(std::getline(lines, line)),
              "witness script not terminated");
    if (line == "end-script") break;
    script_text += line;
    script_text += '\n';
  }
  witness.script = FaultScript::parse(script_text);

  UDC_CHECK(static_cast<bool>(std::getline(lines, line)), "witness truncated");
  {
    std::istringstream in(line);
    std::string token;
    in >> token;
    UDC_CHECK(token == "verdict", "witness expected verdict line");
    witness.report.dc1 = parse_int(expect_field(in, "dc1"), "verdict dc1") != 0;
    witness.report.dc2 = parse_int(expect_field(in, "dc2"), "verdict dc2") != 0;
    witness.report.dc3 = parse_int(expect_field(in, "dc3"), "verdict dc3") != 0;
  }
  return witness;
}

ReplayResult replay_witness(const std::string& text) {
  ReplayResult result;
  result.witness = parse_witness(text);

  // Extract the saved trace verbatim (between "trace" and "end-trace").
  auto trace_begin = text.find("\ntrace\n");
  UDC_CHECK(trace_begin != std::string::npos, "witness has no trace section");
  trace_begin += 7;  // past "\ntrace\n"
  auto trace_end = text.find("end-trace\n", trace_begin);
  UDC_CHECK(trace_end != std::string::npos, "witness trace not terminated");
  std::string saved_trace = text.substr(trace_begin, trace_end - trace_begin);

  // Parse-back validates R1-R4 on the saved side before we even re-run.
  (void)parse_run(saved_trace);

  ChaosOutcome outcome =
      run_scenario(result.witness.scenario, result.witness.script);
  result.rechecked = outcome.report;
  result.violated = !outcome.report.achieved();
  result.trace_matches = format_run(outcome.run) == saved_trace;
  result.verdict_matches =
      outcome.report.dc1 == result.witness.report.dc1 &&
      outcome.report.dc2 == result.witness.report.dc2 &&
      outcome.report.dc3 == result.witness.report.dc3;
  return result;
}

}  // namespace udc
