// Shared main() guard for every binary entry point (bench harnesses, tools).
//
// udckit reports internal contract breaches by throwing InvariantViolation
// (common/check.h).  A bench or tool that lets one escape dies in
// std::terminate with no context; guarded_main converts it — and any other
// exception, e.g. std::stoi on a malformed flag value — into a one-line
// diagnostic on stderr and exit code 1, so CI logs show the failed invariant
// instead of a core dump.
#pragma once

#include <cstdio>
#include <exception>

#include "udc/common/check.h"

namespace udc {

template <typename Body>
int guarded_main(const char* binary, Body&& body) {
  try {
    return body();
  } catch (const InvariantViolation& e) {
    std::fprintf(stderr, "%s: invariant violation: %s\n", binary, e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", binary, e.what());
    return 1;
  }
}

}  // namespace udc
