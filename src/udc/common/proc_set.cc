#include "udc/common/proc_set.h"

#include <sstream>

namespace udc {

std::string ProcSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (ProcessId p : *this) {
    if (!first) out << ',';
    out << p;
    first = false;
  }
  out << '}';
  return out.str();
}

}  // namespace udc
