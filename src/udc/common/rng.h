// Deterministic, seedable PRNG used by the simulator's schedulers and
// fair-lossy channels.  xoshiro256** — fast, high quality, and reproducible
// across platforms (unlike std::default_random_engine).  Every run a
// simulator produces is a pure function of (protocol, context, seed), which
// is what lets tests and benches regenerate identical systems of runs.
#pragma once

#include <cstdint>

namespace udc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method is overkill here; modulo bias is
    // negligible for the small bounds the simulator uses, but we debias
    // anyway to keep runs bit-identical under refactors.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli(p).
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace udc
