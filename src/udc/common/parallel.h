// Shared conventions for the parallel engines (system generation, index
// construction, model checking, and the kt/ run transformations).
//
// Every parallel entry point takes an `unsigned threads` knob with the same
// meaning: 0 = hardware_concurrency (the default), 1 = run the exact legacy
// serial code path, k = shard across k workers.  All of them promise results
// bit-identical to the serial path — parallelism is a work partition, never
// a semantic change.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>

namespace udc {

// Resolve a `threads` knob against the amount of shardable work.  Returns at
// least 1; never more workers than work items.
inline unsigned resolve_parallelism(unsigned requested,
                                    std::size_t work_items) {
  unsigned t = requested;
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  return static_cast<unsigned>(
      std::min<std::size_t>(t, std::max<std::size_t>(work_items, 1)));
}

}  // namespace udc
