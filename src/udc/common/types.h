// Fundamental identifier and index types shared by every udckit module.
//
// The paper (Halpern & Ricciardi, PODC'99) models a fixed finite set
// Proc = {p1, ..., pn} of processes, discrete time ranging over the natural
// numbers, and per-process coordination actions tagged by their initiator.
// These aliases pin down the machine representation of those notions.
#pragma once

#include <cstdint>
#include <limits>

namespace udc {

// Index of a process in Proc = {0, 1, ..., n-1}.  The paper writes p1..pn;
// we use 0-based indices throughout.
using ProcessId = std::int32_t;

// Discrete time.  A run maps times to cuts; simulator horizons are finite.
using Time = std::int64_t;

// Identifier of a coordination action alpha.  Action sets A_p are disjoint
// across processes; an ActionId is globally unique and owned by exactly one
// initiator (see coord/action.h).
using ActionId = std::int64_t;

// Monotone per-channel message sequence number (used to distinguish
// retransmissions of the same logical message from distinct messages).
using SeqNo = std::int64_t;

inline constexpr ProcessId kInvalidProcess = -1;
inline constexpr ActionId kInvalidAction = -1;
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

// Upper bound on the number of processes, imposed by the bitset ProcSet.
inline constexpr int kMaxProcesses = 64;

}  // namespace udc
