// ProcSet: a value-type set of process ids, backed by a 64-bit mask.
//
// Sets of processes are pervasive in the paper: F(r) (the faulty processes in
// run r), Suspects_p(r,m) (the set a failure detector currently reports),
// generalized suspicions (S, k), and the S in assumptions A1/A4/A5t.  A
// bitset keeps all of these O(1) and hashable.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "udc/common/types.h"

namespace udc {

class ProcSet {
 public:
  constexpr ProcSet() = default;
  constexpr explicit ProcSet(std::uint64_t bits) : bits_(bits) {}

  // The full set {0, ..., n-1}.
  static constexpr ProcSet full(int n) {
    assert(n >= 0 && n <= kMaxProcesses);
    return n == kMaxProcesses ? ProcSet(~std::uint64_t{0})
                              : ProcSet((std::uint64_t{1} << n) - 1);
  }
  static constexpr ProcSet empty_set() { return ProcSet(); }
  static constexpr ProcSet singleton(ProcessId p) {
    assert(p >= 0 && p < kMaxProcesses);
    return ProcSet(std::uint64_t{1} << p);
  }

  constexpr bool contains(ProcessId p) const {
    assert(p >= 0 && p < kMaxProcesses);
    return (bits_ >> p) & 1u;
  }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return __builtin_popcountll(bits_); }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr void insert(ProcessId p) { bits_ |= std::uint64_t{1} << p; }
  constexpr void erase(ProcessId p) { bits_ &= ~(std::uint64_t{1} << p); }

  constexpr bool subset_of(ProcSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  friend constexpr ProcSet operator|(ProcSet a, ProcSet b) {
    return ProcSet(a.bits_ | b.bits_);
  }
  friend constexpr ProcSet operator&(ProcSet a, ProcSet b) {
    return ProcSet(a.bits_ & b.bits_);
  }
  // Set difference a - b.
  friend constexpr ProcSet operator-(ProcSet a, ProcSet b) {
    return ProcSet(a.bits_ & ~b.bits_);
  }
  constexpr ProcSet& operator|=(ProcSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr ProcSet& operator&=(ProcSet o) {
    bits_ &= o.bits_;
    return *this;
  }

  // Complement within Proc = {0..n-1}.
  constexpr ProcSet complement(int n) const { return full(n) - *this; }

  friend constexpr bool operator==(ProcSet a, ProcSet b) = default;

  // Iteration over members, lowest id first.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t bits) : bits_(bits) {}
    constexpr ProcessId operator*() const {
      return static_cast<ProcessId>(__builtin_ctzll(bits_));
    }
    constexpr iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    friend constexpr bool operator==(iterator a, iterator b) = default;

   private:
    std::uint64_t bits_;
  };
  constexpr iterator begin() const { return iterator(bits_); }
  constexpr iterator end() const { return iterator(0); }

  // "{0,2,5}"
  std::string to_string() const;

 private:
  std::uint64_t bits_ = 0;
};

struct ProcSetHash {
  std::size_t operator()(ProcSet s) const noexcept {
    // SplitMix64 finalizer: good avalanche for mask values.
    std::uint64_t x = s.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace udc
