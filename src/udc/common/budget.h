// Resource budgets for long-running constructions (graceful degradation).
//
// System generation and model checking are the two places udckit can run
// effectively unbounded: an exhaustive crash-plan sweep is exponential in n,
// and the checker's memo tables grow with formulas × points.  A Budget is a
// resource envelope threaded through those paths; when it trips, the caller
// gets a structured kBudgetExceeded partial result instead of an OOM kill or
// an unbounded wall-clock stall.
//
// Two kinds of caps coexist:
//   * deterministic caps (max_points, max_runs, max_memo_bytes) — what tests
//     pin down, since the trip point is a pure function of the workload;
//   * a wall-clock deadline (steady clock) — what tools and CI jobs use.
// Zero / unset means unlimited.  Budgets are checked BETWEEN units of work
// (between runs, between root points), so the overshoot is bounded by one
// unit — one simulated run or one point's formula evaluation.
#pragma once

#include <chrono>
#include <cstddef>

namespace udc {

enum class BudgetStatus { kComplete, kBudgetExceeded };

inline const char* budget_status_name(BudgetStatus s) {
  return s == BudgetStatus::kComplete ? "complete" : "budget-exceeded";
}

class Budget {
 public:
  Budget() = default;
  static Budget unlimited() { return Budget(); }

  Budget& with_deadline(std::chrono::milliseconds from_now) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() + from_now;
    return *this;
  }
  Budget& with_max_memo_bytes(std::size_t bytes) {
    max_memo_bytes_ = bytes;
    return *this;
  }
  Budget& with_max_points(std::size_t points) {
    max_points_ = points;
    return *this;
  }
  Budget& with_max_runs(std::size_t runs) {
    max_runs_ = runs;
    return *this;
  }

  bool has_deadline() const { return has_deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }
  // 0 = unlimited, for all three caps.
  std::size_t max_memo_bytes() const { return max_memo_bytes_; }
  std::size_t max_points() const { return max_points_; }
  std::size_t max_runs() const { return max_runs_; }

  bool points_exhausted(std::size_t points_done) const {
    return max_points_ != 0 && points_done >= max_points_;
  }
  bool runs_exhausted(std::size_t runs_done) const {
    return max_runs_ != 0 && runs_done >= max_runs_;
  }
  bool memory_exhausted(std::size_t bytes_in_use) const {
    return max_memo_bytes_ != 0 && bytes_in_use > max_memo_bytes_;
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::size_t max_memo_bytes_ = 0;
  std::size_t max_points_ = 0;
  std::size_t max_runs_ = 0;
};

}  // namespace udc
