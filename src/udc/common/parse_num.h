// Checked numeric parsing for the text round-trip layers (fault scripts,
// witness files): the std::sto* family throws std::invalid_argument /
// std::out_of_range, but udckit's contract is that malformed persisted input
// surfaces as InvariantViolation with a message naming the offending text.
#pragma once

#include <cstdint>
#include <string>

#include "udc/common/check.h"

namespace udc {

namespace detail {
template <typename T, typename F>
T checked_parse(const std::string& text, const char* what, F&& convert) {
  try {
    std::size_t used = 0;
    T value = convert(text, &used);
    UDC_CHECK(used == text.size(),
              std::string("trailing junk in ") + what + ": '" + text + "'");
    return value;
  } catch (const InvariantViolation&) {
    throw;
  } catch (const std::exception&) {
    UDC_CHECK(false, std::string("malformed ") + what + ": '" + text + "'");
  }
}
}  // namespace detail

inline int parse_int(const std::string& text, const char* what) {
  return detail::checked_parse<int>(
      text, what,
      [](const std::string& s, std::size_t* used) { return std::stoi(s, used); });
}

inline long long parse_i64(const std::string& text, const char* what) {
  return detail::checked_parse<long long>(
      text, what, [](const std::string& s, std::size_t* used) {
        return std::stoll(s, used);
      });
}

inline std::uint64_t parse_u64(const std::string& text, const char* what) {
  return detail::checked_parse<std::uint64_t>(
      text, what, [](const std::string& s, std::size_t* used) {
        return std::stoull(s, used);
      });
}

inline double parse_f64(const std::string& text, const char* what) {
  return detail::checked_parse<double>(
      text, what, [](const std::string& s, std::size_t* used) {
        return std::stod(s, used);
      });
}

}  // namespace udc
