// Internal invariant checking.
//
// UDC_CHECK is for conditions that indicate a bug in udckit or misuse of its
// API; it throws udc::InvariantViolation (rather than aborting) so tests can
// assert that malformed inputs are rejected, per the R1-R5 run validators.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace udc {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream out;
  out << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) out << " — " << msg;
  throw InvariantViolation(out.str());
}
}  // namespace internal

}  // namespace udc

#define UDC_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::udc::internal::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (0)
