#include "udc/consensus/spec.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace udc {

void ConsensusReport::merge(const ConsensusReport& other) {
  validity &= other.validity;
  agreement &= other.agreement;
  uniform_agreement &= other.uniform_agreement;
  integrity &= other.integrity;
  termination &= other.termination;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

std::optional<std::int64_t> decision_of(const Run& r, ProcessId p) {
  for (const Event& e : r.history(p).events()) {
    if (e.kind == EventKind::kDo && is_decide_action(e.action)) {
      return decided_value(e.action);
    }
  }
  return std::nullopt;
}

ConsensusReport check_consensus(const Run& r,
                                std::span<const std::int64_t> initial_values,
                                Time grace) {
  ConsensusReport rep;
  const int n = r.n();

  std::optional<std::int64_t> correct_value;
  std::optional<std::int64_t> any_value;
  for (ProcessId p = 0; p < n; ++p) {
    // Integrity: at most one decide event.
    int count = 0;
    for (const Event& e : r.history(p).events()) {
      if (e.kind == EventKind::kDo && is_decide_action(e.action)) ++count;
    }
    if (count > 1) {
      rep.integrity = false;
      std::ostringstream out;
      out << "integrity: p" << p << " decided " << count << " times";
      rep.violations.push_back(out.str());
    }

    auto v = decision_of(r, p);
    if (!v) {
      if (!r.is_faulty(p)) {
        rep.termination = false;
        std::ostringstream out;
        out << "termination: correct p" << p << " never decided";
        rep.violations.push_back(out.str());
      }
      continue;
    }
    // Validity.
    if (std::find(initial_values.begin(), initial_values.end(), *v) ==
        initial_values.end()) {
      rep.validity = false;
      std::ostringstream out;
      out << "validity: p" << p << " decided " << *v
          << ", not anyone's initial value";
      rep.violations.push_back(out.str());
    }
    // Agreement.
    if (any_value && *any_value != *v) {
      rep.uniform_agreement = false;
      std::ostringstream out;
      out << "uniform agreement: decisions " << *any_value << " and " << *v;
      rep.violations.push_back(out.str());
    }
    if (!any_value) any_value = v;
    if (!r.is_faulty(p)) {
      if (correct_value && *correct_value != *v) {
        rep.agreement = false;
        std::ostringstream out;
        out << "agreement: correct processes decided " << *correct_value
            << " and " << *v;
        rep.violations.push_back(out.str());
      }
      if (!correct_value) correct_value = v;
    }
  }
  (void)grace;  // termination is judged at the horizon; grace reserved
  return rep;
}

ConsensusReport check_consensus(const System& sys,
                                std::span<const std::int64_t> initial_values,
                                Time grace) {
  ConsensusReport rep;
  for (const Run& r : sys.runs()) {
    rep.merge(check_consensus(r, initial_values, grace));
  }
  return rep;
}

LogAgreementReport check_log_agreement(
    const std::vector<std::vector<std::pair<std::uint64_t, ActionId>>>&
        applied_per_node) {
  LogAgreementReport rep;
  std::map<std::uint64_t, ActionId> slot_action;
  for (std::size_t p = 0; p < applied_per_node.size(); ++p) {
    std::set<std::uint64_t> slots_seen;
    std::set<ActionId> actions_seen;
    for (const auto& [slot, action] : applied_per_node[p]) {
      if (!slots_seen.insert(slot).second) {
        rep.integrity = false;
        std::ostringstream out;
        out << "integrity: p" << p << " applied slot " << slot << " twice";
        rep.violations.push_back(out.str());
      }
      if (!actions_seen.insert(action).second) {
        rep.integrity = false;
        std::ostringstream out;
        out << "integrity: p" << p << " applied action " << action
            << " twice";
        rep.violations.push_back(out.str());
      }
      auto [it, fresh] = slot_action.emplace(slot, action);
      if (!fresh && it->second != action) {
        rep.agreement = false;
        std::ostringstream out;
        out << "agreement: slot " << slot << " holds actions " << it->second
            << " and " << action;
        rep.violations.push_back(out.str());
      }
    }
  }
  return rep;
}

}  // namespace udc
