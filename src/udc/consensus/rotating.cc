#include "udc/consensus/rotating.h"

#include "udc/common/check.h"
#include "udc/consensus/spec.h"

namespace udc {

RotatingConsensus::RotatingConsensus(ProcessId self,
                                     std::vector<std::int64_t> initial_values)
    : n_(static_cast<int>(initial_values.size())) {
  std::int64_t mine = initial_values[static_cast<std::size_t>(self)];
  UDC_CHECK(mine >= 0 && mine < 256, "values must fit in 8 bits");
  estimate_ = mine;
}

void RotatingConsensus::decide(std::int64_t value, Env& env) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  env.perform(decide_action(value));
}

void RotatingConsensus::coord_check(std::int64_t r, Env& env) {
  CoordRound& cr = coord_rounds_[r];
  if (!cr.proposed && round_ == r &&
      static_cast<int>(cr.estimates.size()) >= majority()) {
    // Propose the estimate with the highest timestamp (the locking rule
    // that makes agreement uniform).
    std::int64_t best_ts = -1;
    std::int64_t best_val = -1;
    for (const auto& [q, tv] : cr.estimates) {
      if (tv.first > best_ts) {
        best_ts = tv.first;
        best_val = tv.second;
      }
    }
    cr.proposed = true;
    cr.proposal = best_val;
    // The coordinator adopts its own proposal (self-ack); it stays in round
    // r until a majority of replies is in.
    cr.acks.insert(env.self());
    replies_[r] = Reply::kAck;
    estimate_ = best_val;
    ts_ = r + 1;  // adoption stamps are 1-based: ts 0 means "never adopted"
  }
  if (!cr.proposed) return;
  if (static_cast<int>(cr.acks.size()) >= majority()) {
    decide(cr.proposal, env);
    cr.closed = true;
    return;
  }
  if (!cr.closed &&
      static_cast<int>((cr.acks | cr.nacks).size()) >= majority() &&
      !cr.nacks.empty()) {
    // Majority replied but someone refused: give up on this round (while
    // still answering stragglers) and move on as a participant.
    cr.closed = true;
    if (round_ == r) ++round_;
  }
}

void RotatingConsensus::on_receive(ProcessId from, const Message& msg,
                                   Env& env) {
  switch (msg.kind) {
    case MsgKind::kDecide:
      decide(msg.b, env);
      return;
    case MsgKind::kEstimate: {
      std::int64_t r = msg.a;
      if (coordinator(r) != env.self()) return;
      CoordRound& cr = coord_rounds_[r];
      cr.estimates[from] = {msg.b / 256, msg.b % 256};
      if (cr.proposed) {
        // Demand-driven straggler service: the sender is still waiting in
        // round r, so hand it the proposal directly instead of keeping r in
        // the broadcast-retransmission rotation forever.
        Message m;
        m.kind = MsgKind::kPropose;
        m.a = r;
        m.b = cr.proposal;
        env.send(from, m);
      }
      coord_check(r, env);
      return;
    }
    case MsgKind::kPropose: {
      std::int64_t r = msg.a;
      if (from != coordinator(r)) return;
      if (r > round_) return;  // early; the coordinator will retransmit
      if (r < round_) {
        // Round already left; our reply may have been lost — re-send the
        // recorded one (idempotent message recovery).  Nacks carry our
        // current (ts, value) so the coordinator's estimate pool still
        // converges (see on_tick's nack path).
        Reply past = replied(r);
        if (past == Reply::kNone) return;
        Message reply;
        reply.kind = MsgKind::kEstimateAck;
        reply.a = r;
        reply.b = past == Reply::kAck ? 1 : 2 + ts_ * 256 + estimate_;
        env.send(from, reply);
        return;
      }
      // Our current round's proposal: adopt, ack, advance.
      estimate_ = msg.b;
      ts_ = r + 1;  // see coord_check: 1-based adoption stamps
      replies_[r] = Reply::kAck;
      Message ack;
      ack.kind = MsgKind::kEstimateAck;
      ack.a = r;
      ack.b = 1;
      env.send(from, ack);
      ++round_;
      return;
    }
    case MsgKind::kEstimateAck: {
      std::int64_t r = msg.a;
      if (coordinator(r) != env.self()) return;
      CoordRound& cr = coord_rounds_[r];
      if (msg.b == 1) {
        cr.acks.insert(from);
      } else {
        cr.nacks.insert(from);
        if (msg.b >= 2) {
          // The nack doubles as an estimate: a participant may suspect us
          // and refuse before we ever proposed, and under message loss its
          // phase-1 estimate may never arrive on its own.  Without this the
          // coordinator can wait for estimates from processes that have
          // all moved on — a cross-round deadlock.
          std::int64_t payload = msg.b - 2;
          cr.estimates[from] = {payload / 256, payload % 256};
        }
      }
      coord_check(r, env);
      return;
    }
    default:
      return;
  }
}

void RotatingConsensus::on_suspect(ProcSet suspects, Env&) {
  // ◇S semantics: the *current* report is what counts (pre-stabilization
  // suspicions get retracted); the round-skip logic reads it on each tick.
  current_suspects_ = suspects;
}

void RotatingConsensus::on_tick(Env& env) {
  if (decided_) {
    if (env.outbox_empty() && n_ > 1 && env.now() - last_decide_tx_ >= 2) {
      last_decide_tx_ = env.now();
      if (bcast_cursor_ == env.self()) bcast_cursor_ = (bcast_cursor_ + 1) % n_;
      Message m;
      m.kind = MsgKind::kDecide;
      m.b = decision_;
      env.send(bcast_cursor_, m);
      bcast_cursor_ = (bcast_cursor_ + 1) % n_;
    }
    return;
  }

  // The coordinator's own estimate enters without a self-message; this also
  // re-runs the majority checks each tick.
  if (coordinator(round_) == env.self()) {
    coord_rounds_[round_].estimates[env.self()] = {ts_, estimate_};
    coord_check(round_, env);
    if (decided_) return;
  }

  // Suspecting the current coordinator: nack it and move to the next round.
  ProcessId c = coordinator(round_);
  if (c != env.self() && current_suspects_.contains(c) &&
      replied(round_) == Reply::kNone) {
    replies_[round_] = Reply::kNack;
    nack_last_retx_[round_] = env.now();
    Message nack;
    nack.kind = MsgKind::kEstimateAck;
    nack.a = round_;
    nack.b = 2 + ts_ * 256 + estimate_;  // nack carrying our estimate
    env.send(c, nack);
    ++round_;
    return;
  }

  if (!env.outbox_empty()) return;

  // Two retransmission duties compete for the one idle slot: pushing
  // proposals from rounds we coordinated to peers that have not replied,
  // and the participant estimate for the CURRENT round.  Strictly
  // prioritizing either can starve the other, so they alternate.
  auto send_proposal_retx = [&]() -> bool {
    for (auto& [r, cr] : coord_rounds_) {
      // Closed rounds are served demand-driven (see kEstimate handler);
      // retransmitting them here would starve the open round behind a dead
      // non-replier.
      if (!cr.proposed || cr.closed) continue;
      if (env.now() - cr.last_retx < 6) continue;
      ProcSet replied_set = cr.acks | cr.nacks;
      if (replied_set.size() >= n_) continue;  // everyone answered
      for (ProcessId q = 0; q < n_; ++q) {
        ProcessId target = static_cast<ProcessId>((bcast_cursor_ + q) % n_);
        if (target == env.self() || replied_set.contains(target)) continue;
        Message m;
        m.kind = MsgKind::kPropose;
        m.a = r;
        m.b = cr.proposal;
        env.send(target, m);
        cr.last_retx = env.now();
        bcast_cursor_ = (target + 1) % n_;
        return true;
      }
    }
    return false;
  };
  auto send_estimate = [&]() -> bool {
    if (coordinator(round_) == env.self()) return false;
    if (env.now() - last_estimate_tx_ < 6) return false;
    last_estimate_tx_ = env.now();
    Message m;
    m.kind = MsgKind::kEstimate;
    m.a = round_;
    m.b = ts_ * 256 + estimate_;
    env.send(coordinator(round_), m);
    return true;
  };
  // Third duty: paced retransmission of past nacks.  A nack is sent
  // spontaneously (on suspicion), so nothing prompts its recovery if lost —
  // yet the nacked round's coordinator may be blocked waiting for exactly
  // the estimate that nack carries.
  auto send_nack_retx = [&]() -> bool {
    constexpr Time kNackRetxInterval = 16;
    for (auto& [r, last] : nack_last_retx_) {
      if (env.now() - last < kNackRetxInterval) continue;
      last = env.now();
      Message nack;
      nack.kind = MsgKind::kEstimateAck;
      nack.a = r;
      nack.b = 2 + ts_ * 256 + estimate_;
      env.send(coordinator(r), nack);
      return true;
    }
    return false;
  };
  switch ((env.now() + env.self()) % 3) {
    case 0:
      if (!send_proposal_retx() && !send_estimate()) send_nack_retx();
      break;
    case 1:
      if (!send_estimate() && !send_nack_retx()) send_proposal_retx();
      break;
    default:
      if (!send_nack_retx() && !send_proposal_retx()) send_estimate();
      break;
  }
}

ProtocolFactory rotating_consensus_factory(
    std::vector<std::int64_t> initial_values) {
  return [initial_values](ProcessId p) -> std::unique_ptr<Process> {
    return std::make_unique<RotatingConsensus>(p, initial_values);
  };
}

}  // namespace udc
