#include "udc/consensus/ct_strong.h"

#include "udc/common/check.h"
#include "udc/consensus/spec.h"

namespace udc {

CtStrongConsensus::CtStrongConsensus(ProcessId self,
                                     std::vector<std::int64_t> initial_values)
    : n_(static_cast<int>(initial_values.size())) {
  UDC_CHECK(n_ >= 1 && n_ <= 8, "CT-S packing supports n <= 8");
  v_.assign(static_cast<std::size_t>(n_), -1);
  std::int64_t mine = initial_values[static_cast<std::size_t>(self)];
  UDC_CHECK(mine >= 0 && mine < 127, "values must fit in 7 bits");
  v_[static_cast<std::size_t>(self)] = static_cast<std::int8_t>(mine);
  max_round_seen_.assign(static_cast<std::size_t>(n_), 0);
  phase2_v_.assign(static_cast<std::size_t>(n_), 0);
}

std::uint64_t CtStrongConsensus::pack(const std::vector<std::int8_t>& v) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t byte =
        v[i] < 0 ? 0 : (0x80u | static_cast<std::uint64_t>(v[i]));
    bits |= byte << (8 * i);
  }
  return bits;
}

void CtStrongConsensus::unpack(std::uint64_t bits,
                               std::vector<std::int8_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t byte = (bits >> (8 * i)) & 0xff;
    v[i] = (byte & 0x80) ? static_cast<std::int8_t>(byte & 0x7f) : -1;
  }
}

void CtStrongConsensus::merge_into_v(std::uint64_t packed) {
  std::vector<std::int8_t> other(static_cast<std::size_t>(n_), -1);
  unpack(packed, other);
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < 0) v_[i] = other[i];
  }
}

void CtStrongConsensus::decide(std::int64_t value, Env& env) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  env.perform(decide_action(value));
}

void CtStrongConsensus::try_advance(Env& env) {
  if (decided_) return;
  for (;;) {
    // Can we move past the current round?
    for (ProcessId q = 0; q < n_; ++q) {
      if (q == env.self()) continue;
      if (max_round_seen_[static_cast<std::size_t>(q)] < round_ &&
          !ever_suspected_.contains(q)) {
        return;  // still waiting on q
      }
    }
    if (round_ < n_) {
      ++round_;
      // Entering phase 2 (round_ == n_): the phase-2 broadcast carries v_ as
      // of each idle tick; the intersection below uses the collected
      // phase-2 vectors.
      continue;
    }
    // Phase 2 complete: intersect own V with every phase-2 vector received.
    std::vector<std::int8_t> inter = v_;
    for (ProcessId q : phase2_got_) {
      std::vector<std::int8_t> other(static_cast<std::size_t>(n_), -1);
      unpack(phase2_v_[static_cast<std::size_t>(q)], other);
      for (std::size_t i = 0; i < inter.size(); ++i) {
        if (other[i] < 0) inter[i] = -1;
      }
    }
    for (std::size_t i = 0; i < inter.size(); ++i) {
      if (inter[i] >= 0) {
        decide(inter[i], env);
        return;
      }
    }
    // Degenerate (empty intersection, possible only in anomalous runs):
    // fall back to our own smallest known entry.
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] >= 0) {
        decide(v_[i], env);
        return;
      }
    }
    return;
  }
}

void CtStrongConsensus::on_receive(ProcessId from, const Message& msg,
                                   Env& env) {
  if (msg.kind == MsgKind::kDecide) {
    decide(msg.b, env);
    return;
  }
  if (msg.kind != MsgKind::kEstimate) return;
  int r = static_cast<int>(msg.a);
  merge_into_v(static_cast<std::uint64_t>(msg.b));
  auto qi = static_cast<std::size_t>(from);
  if (r > max_round_seen_[qi]) max_round_seen_[qi] = r;
  if (r >= n_) {
    phase2_v_[qi] = static_cast<std::uint64_t>(msg.b);
    phase2_got_.insert(from);
  }
  try_advance(env);
}

void CtStrongConsensus::on_suspect(ProcSet suspects, Env& env) {
  ever_suspected_ |= suspects;
  try_advance(env);
}

void CtStrongConsensus::on_tick(Env& env) {
  if (n_ == 1) {
    try_advance(env);  // trivially complete: decide own value
    return;
  }
  if (!env.outbox_empty()) return;
  if (bcast_cursor_ == env.self()) bcast_cursor_ = (bcast_cursor_ + 1) % n_;
  Message m;
  if (decided_) {
    m.kind = MsgKind::kDecide;
    m.b = decision_;
  } else {
    m.kind = MsgKind::kEstimate;
    m.a = round_;
    m.b = static_cast<std::int64_t>(pack(v_));
  }
  env.send(bcast_cursor_, m);
  bcast_cursor_ = (bcast_cursor_ + 1) % n_;
}

ProtocolFactory ct_strong_factory(std::vector<std::int64_t> initial_values) {
  return [initial_values](ProcessId p) -> std::unique_ptr<Process> {
    return std::make_unique<CtStrongConsensus>(p, initial_values);
  };
}

}  // namespace udc
