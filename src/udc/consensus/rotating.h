// Rotating-coordinator consensus à la Chandra-Toueg with an
// eventually-strong detector (◇S), tolerating t < n/2 crashes — the ✸W
// cells of Table 1 (✸W converts to ✸S by gossip, CT96).
//
// Round r has coordinator c = r mod n.  Every process passes through every
// round IN ORDER (rounds are never skipped — the liveness induction "all
// correct processes eventually reach round r" depends on it):
//
//   participant in r : retransmit (estimate, ts) to c_r until it either
//                      receives c_r's proposal (adopt value, ts := r, ack)
//                      or currently suspects c_r (nack); then round r+1.
//                      Duplicate proposals for past rounds are answered by
//                      re-sending the recorded reply (loss recovery).
//   coordinator of r : collect round-r estimates from a majority, propose
//                      the max-ts value, then retransmit the proposal until
//                      a majority of REPLIES arrive: all acks -> decide and
//                      flood kDecide; any nack in the majority -> round r+1
//                      (while still serving stragglers of round r).
//
// The max-ts locking rule gives uniform agreement; ◇S's eventual accuracy
// plus a correct majority gives termination after stabilization.
//
// Message payloads: estimates pack b = ts * 256 + value; proposals carry
// b = value; acks b = 1, nacks b = 0; all carry the round in a.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class RotatingConsensus : public Process {
 public:
  RotatingConsensus(ProcessId self, std::vector<std::int64_t> initial_values);

  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_suspect(ProcSet suspects, Env& env) override;
  void on_tick(Env& env) override;

 private:
  struct CoordRound {
    std::map<ProcessId, std::pair<std::int64_t, std::int64_t>>
        estimates;  // sender -> (ts, value)
    bool proposed = false;
    std::int64_t proposal = -1;
    ProcSet acks;
    ProcSet nacks;
    bool closed = false;  // majority replies processed; round is over for us
    Time last_retx = -100;
  };
  enum class Reply : std::uint8_t { kNone, kAck, kNack };

  ProcessId coordinator(std::int64_t r) const {
    return static_cast<ProcessId>(r % n_);
  }
  int majority() const { return n_ / 2 + 1; }
  void decide(std::int64_t value, Env& env);
  void coord_check(std::int64_t r, Env& env);
  Reply replied(std::int64_t r) const {
    auto it = replies_.find(r);
    return it == replies_.end() ? Reply::kNone : it->second;
  }

  int n_ = 0;
  std::int64_t estimate_ = 0;
  std::int64_t ts_ = 0;
  std::int64_t round_ = 0;
  std::map<std::int64_t, Reply> replies_;  // our reply per participated round
  std::map<std::int64_t, Time> nack_last_retx_;  // paced nack retransmission
  // All retransmission duties are paced: an unpaced sender can outrun the
  // receivers' one-event-per-tick budget, backlogging the coordinator's
  // inbox until rounds take arbitrarily long (congestion, not deadlock —
  // but just as fatal on a finite horizon).
  Time last_estimate_tx_ = -100;
  Time last_decide_tx_ = -100;
  ProcSet current_suspects_;  // latest report (◇S semantics, not cumulative)
  std::map<std::int64_t, CoordRound> coord_rounds_;
  bool decided_ = false;
  std::int64_t decision_ = -1;
  ProcessId bcast_cursor_ = 0;
};

ProtocolFactory rotating_consensus_factory(
    std::vector<std::int64_t> initial_values);

}  // namespace udc
