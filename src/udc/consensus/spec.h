// Consensus specification and checker — the baseline the paper compares UDC
// against throughout (Table 1's "consensus" rows).
//
// Decisions are recorded in histories as do events on reserved action ids,
// so the same run machinery serves both problems.  Checked properties:
//   validity            — every decided value was some process's initial value
//   agreement           — no two *correct* processes decide differently
//   uniform agreement   — no two processes (correct or not) decide differently
//   integrity           — each process decides at most once
//   termination         — every correct process decides (by horizon - grace)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

// Reserved action-id block for decision events (outside the §2.4
// coordination-action encoding: owner field would be >= kMaxProcesses).
inline constexpr ActionId kDecideActionBase = ActionId{1} << 40;
inline constexpr std::int64_t kMaxConsensusValue = 1 << 20;

inline ActionId decide_action(std::int64_t value) {
  return kDecideActionBase + value;
}
inline bool is_decide_action(ActionId a) {
  return a >= kDecideActionBase &&
         a < kDecideActionBase + kMaxConsensusValue;
}
inline std::int64_t decided_value(ActionId a) { return a - kDecideActionBase; }

struct ConsensusReport {
  bool validity = true;
  bool agreement = true;
  bool uniform_agreement = true;
  bool integrity = true;
  bool termination = true;
  std::vector<std::string> violations;

  bool achieved_uniform() const {
    return validity && uniform_agreement && integrity && termination;
  }
  bool achieved() const {
    return validity && agreement && integrity && termination;
  }
  void merge(const ConsensusReport& other);
};

// First decision of p in r, if any.
std::optional<std::int64_t> decision_of(const Run& r, ProcessId p);

ConsensusReport check_consensus(const Run& r,
                                std::span<const std::int64_t> initial_values,
                                Time grace = 0);
ConsensusReport check_consensus(const System& sys,
                                std::span<const std::int64_t> initial_values,
                                Time grace = 0);

// Replicated-log agreement, the multi-slot face of uniform agreement: the
// coordination service (svc/) drives one batch action through each log
// slot, and the slot is the consensus instance.  Each inner vector is one
// replica's applied (slot, action) sequence, in ITS apply order.
//   agreement — no slot maps to two different actions across replicas
//               (uniform: restarted replicas' histories count too)
//   integrity — no replica applies a slot twice or an action twice
struct LogAgreementReport {
  bool agreement = true;
  bool integrity = true;
  std::vector<std::string> violations;

  bool achieved() const { return agreement && integrity; }
};

LogAgreementReport check_log_agreement(
    const std::vector<std::vector<std::pair<std::uint64_t, ActionId>>>&
        applied_per_node);

}  // namespace udc
