// Chandra-Toueg consensus with a Strong failure detector (S: strong
// completeness + weak accuracy), tolerating up to n-1 crashes — the
// algorithm behind Table 1's "Strong"/"Perfect" consensus cells, adapted to
// fair-lossy channels by retransmission (the paper notes the CT algorithm
// "can be modified easily" this way).
//
// Phase 1 — n-1 asynchronous rounds: every process repeatedly broadcasts its
// known-proposals vector V tagged with its round; it advances past round r
// once, for every q, it has seen a message from q tagged >= r or has ever
// suspected q.  Phase 2 — one exchange of full V's under the same rule; each
// process intersects the V's it collected.  Weak accuracy guarantees a
// never-suspected correct q* whose V everyone waited for, which (with the
// n-1 rounds) makes the intersections equal.  Decide: the entry of the
// intersection with the smallest process id; decisions are flooded with
// kDecide so laggards terminate under message loss.
//
// Values are small non-negative integers (< 127); V is packed 8 bits per
// process into the message's 64-bit payload, so n <= 8 here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class CtStrongConsensus : public Process {
 public:
  CtStrongConsensus(ProcessId self, std::vector<std::int64_t> initial_values);

  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_suspect(ProcSet suspects, Env& env) override;
  void on_tick(Env& env) override;

  static std::uint64_t pack(const std::vector<std::int8_t>& v);
  static void unpack(std::uint64_t bits, std::vector<std::int8_t>& v);

 private:
  void merge_into_v(std::uint64_t packed);
  void try_advance(Env& env);
  void decide(std::int64_t value, Env& env);

  int n_ = 0;
  std::vector<std::int8_t> v_;           // -1 = unknown, else the proposal
  int round_ = 1;                        // 1..n-1 phase 1; n = phase 2
  std::vector<int> max_round_seen_;      // per sender
  std::vector<std::uint64_t> phase2_v_;  // per sender, packed V (if seen)
  ProcSet phase2_got_;
  ProcSet ever_suspected_;
  bool decided_ = false;
  std::int64_t decision_ = -1;
  ProcessId bcast_cursor_ = 0;
};

// Factory for generate_system / simulate: every process proposes
// initial_values[self].
ProtocolFactory ct_strong_factory(std::vector<std::int64_t> initial_values);

}  // namespace udc
