#include "udc/logic/properties.h"

#include <unordered_map>

namespace udc {

bool is_local_to(ModelChecker& mc, ProcessId p, const FormulaPtr& f) {
  return mc.valid(f_or(f_knows(p, f), f_knows(p, f_not(f))));
}

bool is_stable(ModelChecker& mc, const FormulaPtr& f) {
  return mc.valid(f_implies(f, f_always(f)));
}

bool is_insensitive_to_failure_by(ModelChecker& mc, const System& sys,
                                  ProcessId q, const FormulaPtr& f) {
  // Group points by q's local history (hash + length; hash collisions are
  // resolved by the paired truth comparison being conservative: a collision
  // could only produce a spurious *failure*, which the caller investigates,
  // never a spurious pass -- and 64-bit prefix hashes make even that
  // vanishingly unlikely).
  struct Key {
    std::uint64_t hash;
    std::size_t len;
    bool operator==(const Key& other) const {
      return hash == other.hash && len == other.len;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.hash ^ (k.len * 0x9e3779b97f4a7c15ull));
    }
  };
  std::unordered_map<Key, Point, KeyHash> representative;
  sys.for_each_point([&](Point at) {
    const Run& r = sys.run(at.run);
    Key key{r.local_state_hash(q, at.m), r.history_len(q, at.m)};
    representative.emplace(key, at);
  });

  bool ok = true;
  sys.for_each_point([&](Point at) {
    if (!ok) return;
    const Run& r = sys.run(at.run);
    std::size_t len = r.history_len(q, at.m);
    if (len == 0) return;
    const History& h = r.history(q);
    if (h[len - 1].kind != EventKind::kCrash) return;
    // This point's q-history is h' · crash_q; find a point whose q-history
    // is exactly h'.
    Key stripped{h.prefix_hash(len - 1), len - 1};
    auto it = representative.find(stripped);
    if (it == representative.end()) return;  // no witness pair in the system
    if (mc.holds_at(at, f) != mc.holds_at(it->second, f)) ok = false;
  });
  return ok;
}

}  // namespace udc
