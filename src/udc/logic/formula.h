// The formal language of §2.3: linear-time temporal logic with knowledge.
//
//   phi ::= true | prim | ¬phi | phi ∧ phi | phi ∨ phi | phi ⇒ phi
//         | □phi | ◇phi | K_p(phi) | D_S(phi)
//
// Primitives are predicates over a point's cut (e.g. init_p(alpha),
// do_p(alpha), crash(p), send/recv occurrences); their truth is determined
// by the histories, as in the paper.  D_S is distributed knowledge
// (footnote 4 / [FHMV95]), used to state A4's consequence.
//
// Formulas are immutable DAGs shared via FormulaPtr; the model checker
// memoizes per (node, point).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/common/types.h"
#include "udc/event/run.h"

namespace udc {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

enum class FormulaKind {
  kTrue,
  kPrim,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kAlways,        // □
  kEventually,    // ◇
  kUntil,         // U (strong until)
  kKnows,         // K_p
  kDistKnows,     // D_S
  kEveryoneKnows, // E_G  = ∧_{p∈G} K_p
  kCommonKnows,   // C_G  = greatest fixpoint of E_G(φ ∧ ·)
};

class Formula {
 public:
  using PrimFn = std::function<bool(const Run&, Time)>;
  // First time the primitive becomes true in a run, or nullopt if never.
  using FirstTimeFn = std::function<std::optional<Time>(const Run&)>;

  FormulaKind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  const PrimFn& prim() const { return prim_; }
  // Non-empty only for monotone primitives (see prim_monotone): the verdict
  // at (r, m) is `first_time(r) <= m`.  Lets the checker decide a whole run
  // with one history scan instead of one scan per point.
  const FirstTimeFn& first_time() const { return first_time_; }
  const std::vector<FormulaPtr>& children() const { return children_; }
  ProcessId agent() const { return agent_; }
  ProcSet group() const { return group_; }

  std::string to_string() const;

  // -- constructors -----------------------------------------------------
  static FormulaPtr truth();
  static FormulaPtr prim(std::string label, PrimFn fn);
  // A primitive that, once true at some point of a run, stays true for the
  // rest of that run (histories are prefix-monotone, so any "event e has
  // occurred" predicate qualifies).  `fn` reports when it first becomes
  // true; the derived per-point predicate is `fn(r) <= m`.
  static FormulaPtr prim_monotone(std::string label, FirstTimeFn fn);
  static FormulaPtr negation(FormulaPtr f);
  static FormulaPtr conjunction(std::vector<FormulaPtr> fs);
  static FormulaPtr disjunction(std::vector<FormulaPtr> fs);
  static FormulaPtr implies(FormulaPtr a, FormulaPtr b);
  static FormulaPtr always(FormulaPtr f);
  static FormulaPtr eventually(FormulaPtr f);
  // Strong until: a U b holds iff b holds at some future point and a holds
  // at every point strictly before it (within the run's horizon).
  static FormulaPtr until(FormulaPtr a, FormulaPtr b);
  static FormulaPtr knows(ProcessId p, FormulaPtr f);
  static FormulaPtr dist_knows(ProcSet s, FormulaPtr f);
  // E_G(φ): every process in G knows φ.
  static FormulaPtr everyone_knows(ProcSet g, FormulaPtr f);
  // C_G(φ): common knowledge of φ in G — φ holds at every point reachable
  // from here by any finite chain of ~_p steps (p ∈ G).  Evaluated as the
  // greatest fixpoint over the finite system ([FHMV95] Ch. 2); the engine
  // of the coordinated-attack impossibility.
  static FormulaPtr common_knows(ProcSet g, FormulaPtr f);

 private:
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kTrue;
  std::string label_;
  PrimFn prim_;
  FirstTimeFn first_time_;  // empty unless built by prim_monotone
  std::vector<FormulaPtr> children_;
  ProcessId agent_ = kInvalidProcess;
  ProcSet group_;
};

// -- the paper's primitive propositions --------------------------------
FormulaPtr f_init(ProcessId p, ActionId alpha);   // init_p(alpha)
FormulaPtr f_do(ProcessId p, ActionId alpha);     // do_p(alpha)
FormulaPtr f_crash(ProcessId p);                  // crash(p)
FormulaPtr f_suspected_by(ProcessId p, ProcessId q);  // q ∈ Suspects_p

// Convenience binary forms.
inline FormulaPtr f_and(FormulaPtr a, FormulaPtr b) {
  return Formula::conjunction({std::move(a), std::move(b)});
}
inline FormulaPtr f_or(FormulaPtr a, FormulaPtr b) {
  return Formula::disjunction({std::move(a), std::move(b)});
}
inline FormulaPtr f_not(FormulaPtr a) { return Formula::negation(std::move(a)); }
inline FormulaPtr f_implies(FormulaPtr a, FormulaPtr b) {
  return Formula::implies(std::move(a), std::move(b));
}
inline FormulaPtr f_always(FormulaPtr a) { return Formula::always(std::move(a)); }
inline FormulaPtr f_eventually(FormulaPtr a) {
  return Formula::eventually(std::move(a));
}
inline FormulaPtr f_knows(ProcessId p, FormulaPtr a) {
  return Formula::knows(p, std::move(a));
}
inline FormulaPtr f_until(FormulaPtr a, FormulaPtr b) {
  return Formula::until(std::move(a), std::move(b));
}
inline FormulaPtr f_everyone_knows(ProcSet g, FormulaPtr a) {
  return Formula::everyone_knows(g, std::move(a));
}
inline FormulaPtr f_common_knows(ProcSet g, FormulaPtr a) {
  return Formula::common_knows(g, std::move(a));
}

}  // namespace udc
