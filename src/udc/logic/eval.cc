#include "udc/logic/eval.h"

#include <atomic>
#include <limits>
#include <mutex>
#include <thread>

#include "udc/common/check.h"
#include "udc/common/parallel.h"

namespace udc {

std::uint32_t ModelChecker::intern(const FormulaPtr& f) {
  UDC_CHECK(f != nullptr, "null formula");
  auto it = ids_.find(f.get());
  if (it != ids_.end()) return it->second;
  retained_.push_back(f);  // the root keeps the whole DAG alive
  return intern_node(f.get());
}

std::uint32_t ModelChecker::intern_node(const Formula* f) {
  if (auto it = ids_.find(f); it != ids_.end()) return it->second;
  // Children first: ids are a post-order numbering, so every child id is
  // smaller than its parent's and the DAG stays acyclic in id space.
  std::vector<std::uint32_t> kids;
  kids.reserve(f->children().size());
  for (const FormulaPtr& c : f->children()) kids.push_back(intern_node(c.get()));
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  ids_.emplace(f, id);
  nodes_.push_back(Node{f, static_cast<std::uint32_t>(child_ids_.size()),
                        static_cast<std::uint32_t>(kids.size())});
  child_ids_.insert(child_ids_.end(), kids.begin(), kids.end());
  slots_.emplace_back();
  return id;
}

bool ModelChecker::holds_at(Point at, const FormulaPtr& f) {
  return eval(at, intern(f));
}

bool ModelChecker::valid(const FormulaPtr& f) {
  return !find_counterexample(f).has_value();
}

std::optional<Point> ModelChecker::find_counterexample(const FormulaPtr& f) {
  const std::uint32_t fid = intern(f);
  std::optional<Point> witness;
  sys_.for_each_point([&](Point at) {
    if (!witness && !eval(at, fid)) witness = at;
  });
  return witness;
}

BudgetedVerdict ModelChecker::valid_budgeted(const FormulaPtr& f,
                                             const Budget& budget) {
  UDC_CHECK(f != nullptr, "null formula");
  const std::uint32_t fid = intern(f);
  BudgetedVerdict verdict;
  // Deadline syscalls are amortized: the clock is consulted once per stride.
  constexpr std::size_t kDeadlineStride = 256;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    const Run& r = sys_.run(i);
    for (Time m = 0; m <= r.horizon(); ++m) {
      if (budget.points_exhausted(verdict.points_checked) ||
          budget.memory_exhausted(cache_bytes()) ||
          (verdict.points_checked % kDeadlineStride == 0 &&
           budget.deadline_expired())) {
        verdict.status = BudgetStatus::kBudgetExceeded;
        return verdict;
      }
      const Point at{i, m};
      ++verdict.points_checked;
      if (!eval(at, fid)) {
        verdict.valid = false;
        verdict.counterexample = at;
        return verdict;
      }
    }
  }
  verdict.valid = true;
  return verdict;
}

bool ModelChecker::valid_parallel(const FormulaPtr& f, unsigned parallelism) {
  return !find_counterexample_parallel(f, parallelism).has_value();
}

std::optional<Point> ModelChecker::find_counterexample_parallel(
    const FormulaPtr& f, unsigned parallelism) {
  UDC_CHECK(f != nullptr, "null formula");
  const unsigned threads = resolve_parallelism(parallelism, sys_.size());
  if (threads <= 1) return find_counterexample(f);

  // Run-sharded search for the minimal failing point.  Within one run the
  // first failure (smallest m) is found by an ascending scan; across runs
  // the winner is the failure with the smallest run index, so workers prune
  // any claimed run at or beyond the best run seen so far.  The result is
  // therefore exactly the serial witness: smallest run, then smallest m.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> best_run{std::numeric_limits<std::size_t>::max()};
  std::mutex mu;
  std::optional<Point> best;

  auto worker = [&] {
    // Each worker owns a private checker over the shared read-only system;
    // verdicts are deterministic, so duplicated sub-evaluations across
    // workers cannot disagree.
    ModelChecker local(sys_);
    const std::uint32_t fid = local.intern(f);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sys_.size()) return;
      if (i >= best_run.load(std::memory_order_acquire)) continue;
      const Run& r = sys_.run(i);
      for (Time m = 0; m <= r.horizon(); ++m) {
        if (local.eval(Point{i, m}, fid)) continue;
        std::lock_guard<std::mutex> lock(mu);
        if (!best || i < best->run) {
          best = Point{i, m};
          best_run.store(i, std::memory_order_release);
        }
        break;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return best;
}

std::size_t ModelChecker::cache_entries_recount() const {
  std::size_t filled = 0;
  for (const std::vector<std::uint64_t>& t : slots_) {
    if (t.empty()) continue;
    for (std::size_t pi = 0; pi < sys_.total_points(); ++pi) {
      if (((t[pi >> 5] >> ((pi & 31) * 2)) & 3) != kTriUnknown) ++filled;
    }
  }
  return filled;
}

std::size_t ModelChecker::cache_bytes() const {
  std::size_t bytes = 0;
  for (const std::vector<std::uint64_t>& t : slots_) {
    bytes += t.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

std::size_t ModelChecker::cache_tables() const {
  std::size_t tables = 0;
  for (const std::vector<std::uint64_t>& t : slots_) {
    if (!t.empty()) ++tables;
  }
  return tables;
}

bool ModelChecker::eval(Point at, std::uint32_t fid) {
  const std::size_t pi = point_index(at);
  if (const std::uint64_t cached = slot_get(fid, pi); cached != kTriUnknown) {
    return cached == kTriTrue;
  }

  // nodes_ / child_ids_ are stable during evaluation (interning only happens
  // at the public entry points), so plain copies of the node fields suffice.
  const Node node = nodes_[fid];
  const Formula& f = *node.f;
  auto child = [&](std::uint32_t k) { return child_ids_[node.first_child + k]; };

  bool value = false;
  switch (f.kind()) {
    case FormulaKind::kTrue:
      value = true;
      break;
    case FormulaKind::kPrim: {
      if (f.first_time()) {
        // Monotone primitive: the verdict flips false→true at the first
        // occurrence time, so one O(|history|) scan decides the whole run —
        // instead of one prefix scan per point.
        const Run& r = sys_.run(at.run);
        const std::optional<Time> t0 = f.first_time()(r);
        for (Time m = 0; m <= r.horizon(); ++m) {
          slot_set(fid, point_index(Point{at.run, m}),
                   t0.has_value() && *t0 <= m);
        }
        return slot_get(fid, pi) == kTriTrue;
      }
      value = f.prim()(sys_.run(at.run), at.m);
      break;
    }
    case FormulaKind::kNot:
      value = !eval(at, child(0));
      break;
    case FormulaKind::kAnd: {
      value = true;
      for (std::uint32_t k = 0; k < node.num_children; ++k) {
        if (!eval(at, child(k))) {
          value = false;
          break;
        }
      }
      break;
    }
    case FormulaKind::kOr: {
      value = false;
      for (std::uint32_t k = 0; k < node.num_children; ++k) {
        if (eval(at, child(k))) {
          value = true;
          break;
        }
      }
      break;
    }
    case FormulaKind::kImplies:
      value = !eval(at, child(0)) || eval(at, child(1));
      break;
    case FormulaKind::kAlways:
    case FormulaKind::kEventually: {
      // Fill the whole suffix of this run iteratively (avoids horizon-deep
      // recursion): □ is a suffix conjunction, ◇ a suffix disjunction.
      const Run& r = sys_.run(at.run);
      const std::uint32_t cid = child(0);
      bool acc = f.kind() == FormulaKind::kAlways;
      for (Time m = r.horizon(); m >= at.m; --m) {
        bool here = eval(Point{at.run, m}, cid);
        acc = f.kind() == FormulaKind::kAlways ? (acc && here) : (acc || here);
        slot_set(fid, point_index(Point{at.run, m}), acc);
      }
      return slot_get(fid, pi) == kTriTrue;
    }
    case FormulaKind::kUntil: {
      // Strong until, filled iteratively over the run suffix:
      //   U(T) = b(T);  U(m) = b(m) ∨ (a(m) ∧ U(m+1)).
      const Run& r = sys_.run(at.run);
      const std::uint32_t aid = child(0);
      const std::uint32_t bid = child(1);
      bool acc = false;
      for (Time m = r.horizon(); m >= at.m; --m) {
        acc = eval(Point{at.run, m}, bid) ||
              (eval(Point{at.run, m}, aid) && acc);
        slot_set(fid, point_index(Point{at.run, m}), acc);
      }
      return slot_get(fid, pi) == kTriTrue;
    }
    case FormulaKind::kKnows: {
      // Agent indistinguishability is an equivalence relation, so every
      // member of the class shares `at`'s K_p verdict — fill the whole
      // class at once (same trick as the C_G frontier fill below).  On an
      // early break the partial fill is still sound: the scanned members
      // belong to the same class and so share the failing verdict.
      const auto cls = sys_.equivalence_class(f.agent(), at);
      value = true;
      for (Point other : cls) {
        if (!eval(other, child(0))) {
          value = false;
          break;
        }
      }
      for (Point other : cls) slot_set(fid, point_index(other), value);
      break;
    }
    case FormulaKind::kEveryoneKnows: {
      value = true;
      for (ProcessId p : f.group()) {
        for (Point other : sys_.equivalence_class(p, at)) {
          if (!eval(other, child(0))) {
            value = false;
            break;
          }
        }
        if (!value) break;
      }
      break;
    }
    case FormulaKind::kCommonKnows: {
      // Greatest fixpoint: φ must hold everywhere in the component of `at`
      // under the union of the group's indistinguishability relations.
      // The relation is symmetric, so every visited point shares `at`'s
      // verdict — cache the whole frontier at once.
      std::vector<Point> stack{at};
      std::vector<Point> visited;
      std::vector<char> seen(sys_.total_points(), 0);
      seen[pi] = 1;
      bool all_hold = true;
      while (!stack.empty() && all_hold) {
        Point cur = stack.back();
        stack.pop_back();
        visited.push_back(cur);
        if (!eval(cur, child(0))) {
          all_hold = false;
          break;
        }
        for (ProcessId p : f.group()) {
          for (Point n : sys_.equivalence_class(p, cur)) {
            char& mark = seen[point_index(n)];
            if (mark == 0) {
              mark = 1;
              stack.push_back(n);
            }
          }
        }
      }
      for (Point v : visited) {
        slot_set(fid, point_index(v), all_hold);
      }
      value = all_hold;
      break;
    }
    case FormulaKind::kDistKnows: {
      // Points considered possible by *everyone* in the group: intersect by
      // filtering one member's class through pairwise indistinguishability.
      // The intersection of equivalence relations is again an equivalence
      // relation, so the D_S verdict is shared across the intersection
      // class — fill every member seen so far (all of them on success, the
      // scanned prefix on an early break; either way they share `value`).
      ProcessId first = *f.group().begin();
      value = true;
      const Run& here = sys_.run(at.run);
      std::vector<Point> members;
      for (Point other : sys_.equivalence_class(first, at)) {
        bool in_intersection = true;
        for (ProcessId q : f.group()) {
          if (q == first) continue;
          if (!Run::indistinguishable(here, at.m, sys_.run(other.run), other.m,
                                      q)) {
            in_intersection = false;
            break;
          }
        }
        if (!in_intersection) continue;
        members.push_back(other);
        if (!eval(other, child(0))) {
          value = false;
          break;
        }
      }
      for (Point m : members) slot_set(fid, point_index(m), value);
      break;
    }
  }

  slot_set(fid, pi, value);
  return value;
}

}  // namespace udc
