#include "udc/logic/eval.h"

#include "udc/common/check.h"

namespace udc {

bool ModelChecker::holds_at(Point at, const FormulaPtr& f) {
  UDC_CHECK(f != nullptr, "null formula");
  retained_.push_back(f);
  return eval(at, *f);
}

bool ModelChecker::valid(const FormulaPtr& f) {
  return !find_counterexample(f).has_value();
}

std::optional<Point> ModelChecker::find_counterexample(const FormulaPtr& f) {
  UDC_CHECK(f != nullptr, "null formula");
  retained_.push_back(f);
  std::optional<Point> witness;
  sys_.for_each_point([&](Point at) {
    if (!witness && !eval(at, *f)) witness = at;
  });
  return witness;
}

bool ModelChecker::eval(Point at, const Formula& f) {
  auto& slots = cache_[&f];
  if (slots.empty()) {
    slots.assign(sys_.size() * static_cast<std::size_t>(sys_.max_horizon() + 1),
                 Tri::kUnknown);
  }
  Tri& slot = slots[point_index(at)];
  if (slot != Tri::kUnknown) return slot == Tri::kTrue;

  bool value = false;
  switch (f.kind()) {
    case FormulaKind::kTrue:
      value = true;
      break;
    case FormulaKind::kPrim:
      value = f.prim()(sys_.run(at.run), at.m);
      break;
    case FormulaKind::kNot:
      value = !eval(at, *f.children()[0]);
      break;
    case FormulaKind::kAnd: {
      value = true;
      for (const auto& child : f.children()) {
        if (!eval(at, *child)) {
          value = false;
          break;
        }
      }
      break;
    }
    case FormulaKind::kOr: {
      value = false;
      for (const auto& child : f.children()) {
        if (eval(at, *child)) {
          value = true;
          break;
        }
      }
      break;
    }
    case FormulaKind::kImplies:
      value = !eval(at, *f.children()[0]) || eval(at, *f.children()[1]);
      break;
    case FormulaKind::kAlways:
    case FormulaKind::kEventually: {
      // Fill the whole suffix of this run iteratively (avoids horizon-deep
      // recursion): □ is a suffix conjunction, ◇ a suffix disjunction.
      const Run& r = sys_.run(at.run);
      const Formula& child = *f.children()[0];
      bool acc = f.kind() == FormulaKind::kAlways;
      for (Time m = r.horizon(); m >= at.m; --m) {
        bool here = eval(Point{at.run, m}, child);
        acc = f.kind() == FormulaKind::kAlways ? (acc && here) : (acc || here);
        Tri& s = slots[point_index(Point{at.run, m})];
        if (s == Tri::kUnknown) s = acc ? Tri::kTrue : Tri::kFalse;
        ++cache_size_;
      }
      return slots[point_index(at)] == Tri::kTrue;
    }
    case FormulaKind::kUntil: {
      // Strong until, filled iteratively over the run suffix:
      //   U(T) = b(T);  U(m) = b(m) ∨ (a(m) ∧ U(m+1)).
      const Run& r = sys_.run(at.run);
      const Formula& a = *f.children()[0];
      const Formula& b = *f.children()[1];
      bool acc = false;
      for (Time m = r.horizon(); m >= at.m; --m) {
        bool here = eval(Point{at.run, m}, b) ||
                    (eval(Point{at.run, m}, a) && acc);
        acc = here;
        Tri& s = slots[point_index(Point{at.run, m})];
        if (s == Tri::kUnknown) s = acc ? Tri::kTrue : Tri::kFalse;
        ++cache_size_;
      }
      return slots[point_index(at)] == Tri::kTrue;
    }
    case FormulaKind::kKnows: {
      value = true;
      for (Point other : sys_.equivalence_class(f.agent(), at)) {
        if (!eval(other, *f.children()[0])) {
          value = false;
          break;
        }
      }
      break;
    }
    case FormulaKind::kEveryoneKnows: {
      value = true;
      for (ProcessId p : f.group()) {
        for (Point other : sys_.equivalence_class(p, at)) {
          if (!eval(other, *f.children()[0])) {
            value = false;
            break;
          }
        }
        if (!value) break;
      }
      break;
    }
    case FormulaKind::kCommonKnows: {
      // Greatest fixpoint: φ must hold everywhere in the component of `at`
      // under the union of the group's indistinguishability relations.
      // The relation is symmetric, so every visited point shares `at`'s
      // verdict — cache the whole frontier at once.
      std::vector<Point> stack{at};
      std::vector<Point> visited;
      std::vector<char> seen(sys_.size() *
                                 static_cast<std::size_t>(sys_.max_horizon() + 1),
                             0);
      seen[point_index(at)] = 1;
      bool all_hold = true;
      while (!stack.empty() && all_hold) {
        Point cur = stack.back();
        stack.pop_back();
        visited.push_back(cur);
        if (!eval(cur, *f.children()[0])) {
          all_hold = false;
          break;
        }
        for (ProcessId p : f.group()) {
          for (Point next : sys_.equivalence_class(p, cur)) {
            char& mark = seen[point_index(next)];
            if (mark == 0) {
              mark = 1;
              stack.push_back(next);
            }
          }
        }
      }
      for (Point v : visited) {
        Tri& s = slots[point_index(v)];
        if (s == Tri::kUnknown) {
          s = all_hold ? Tri::kTrue : Tri::kFalse;
          ++cache_size_;
        }
      }
      value = all_hold;
      break;
    }
    case FormulaKind::kDistKnows: {
      // Points considered possible by *everyone* in the group: intersect by
      // filtering one member's class through pairwise indistinguishability.
      ProcessId first = *f.group().begin();
      value = true;
      const Run& here = sys_.run(at.run);
      for (Point other : sys_.equivalence_class(first, at)) {
        bool in_intersection = true;
        for (ProcessId q : f.group()) {
          if (q == first) continue;
          if (!Run::indistinguishable(here, at.m, sys_.run(other.run), other.m,
                                      q)) {
            in_intersection = false;
            break;
          }
        }
        if (in_intersection && !eval(other, *f.children()[0])) {
          value = false;
          break;
        }
      }
      break;
    }
  }

  slot = value ? Tri::kTrue : Tri::kFalse;
  ++cache_size_;
  return value;
}

}  // namespace udc
