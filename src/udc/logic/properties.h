// Semantic properties of formulas relative to a system (§2.3, Def 3.3).
//
//   local to p:     K_p(phi) ∨ K_p(¬phi) valid — p always knows whether phi
//   stable:         phi ⇒ □phi valid — once true, stays true
//   insensitive to failure by q (Def 3.3): appending crash_q to q's local
//                   history never changes phi's truth value
//
// These are the side conditions of assumption A4 and of Theorem 3.6's use
// of phi = K_q(init_p(alpha)); tests verify them on generated systems, and
// the A-assumption checkers (kt/assumptions.h) require them as inputs.
#pragma once

#include "udc/event/system.h"
#include "udc/logic/eval.h"
#include "udc/logic/formula.h"

namespace udc {

bool is_local_to(ModelChecker& mc, ProcessId p, const FormulaPtr& f);

bool is_stable(ModelChecker& mc, const FormulaPtr& f);

// Empirical check of Def 3.3 over the finite system: for every pair of
// points (r,m), (r',m') with r'_q(m') = r_q(m) · crash_q, phi agrees.
// `f` should be local to q for the notion to match the paper's definition.
bool is_insensitive_to_failure_by(ModelChecker& mc, const System& sys,
                                  ProcessId q, const FormulaPtr& f);

}  // namespace udc
