#include "udc/logic/formula.h"

#include <sstream>

#include "udc/common/check.h"

namespace udc {

FormulaPtr Formula::truth() {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kTrue;
  f->label_ = "true";
  return f;
}

FormulaPtr Formula::prim(std::string label, PrimFn fn) {
  UDC_CHECK(fn != nullptr, "primitive needs an evaluator");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kPrim;
  f->label_ = std::move(label);
  f->prim_ = std::move(fn);
  return f;
}

FormulaPtr Formula::prim_monotone(std::string label, FirstTimeFn fn) {
  UDC_CHECK(fn != nullptr, "primitive needs an evaluator");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kPrim;
  f->label_ = std::move(label);
  // The per-point predicate is derived from the first-occurrence time, so
  // both views of the primitive can never disagree.
  f->prim_ = [fn](const Run& r, Time m) {
    const std::optional<Time> t = fn(r);
    return t.has_value() && *t <= m;
  };
  f->first_time_ = std::move(fn);
  return f;
}

FormulaPtr Formula::negation(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kNot;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::conjunction(std::vector<FormulaPtr> fs) {
  UDC_CHECK(!fs.empty(), "empty conjunction (use truth())");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kAnd;
  f->children_ = std::move(fs);
  return f;
}

FormulaPtr Formula::disjunction(std::vector<FormulaPtr> fs) {
  UDC_CHECK(!fs.empty(), "empty disjunction");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kOr;
  f->children_ = std::move(fs);
  return f;
}

FormulaPtr Formula::implies(FormulaPtr a, FormulaPtr b) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kImplies;
  f->children_ = {std::move(a), std::move(b)};
  return f;
}

FormulaPtr Formula::always(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kAlways;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::eventually(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kEventually;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::until(FormulaPtr a, FormulaPtr b) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kUntil;
  f->children_ = {std::move(a), std::move(b)};
  return f;
}

FormulaPtr Formula::everyone_knows(ProcSet g, FormulaPtr child) {
  UDC_CHECK(!g.empty(), "E_G needs a nonempty group");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kEveryoneKnows;
  f->group_ = g;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::common_knows(ProcSet g, FormulaPtr child) {
  UDC_CHECK(!g.empty(), "C_G needs a nonempty group");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kCommonKnows;
  f->group_ = g;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::knows(ProcessId p, FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kKnows;
  f->agent_ = p;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::dist_knows(ProcSet s, FormulaPtr child) {
  UDC_CHECK(!s.empty(), "distributed knowledge needs a nonempty group");
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kDistKnows;
  f->group_ = s;
  f->children_ = {std::move(child)};
  return f;
}

std::string Formula::to_string() const {
  std::ostringstream out;
  switch (kind_) {
    case FormulaKind::kTrue:
      out << "true";
      break;
    case FormulaKind::kPrim:
      out << label_;
      break;
    case FormulaKind::kNot:
      out << "¬(" << children_[0]->to_string() << ')';
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* op = kind_ == FormulaKind::kAnd ? " ∧ " : " ∨ ";
      out << '(';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << op;
        out << children_[i]->to_string();
      }
      out << ')';
      break;
    }
    case FormulaKind::kImplies:
      out << '(' << children_[0]->to_string() << " ⇒ "
          << children_[1]->to_string() << ')';
      break;
    case FormulaKind::kAlways:
      out << "□(" << children_[0]->to_string() << ')';
      break;
    case FormulaKind::kEventually:
      out << "◇(" << children_[0]->to_string() << ')';
      break;
    case FormulaKind::kUntil:
      out << '(' << children_[0]->to_string() << " U "
          << children_[1]->to_string() << ')';
      break;
    case FormulaKind::kKnows:
      out << 'K' << agent_ << '(' << children_[0]->to_string() << ')';
      break;
    case FormulaKind::kDistKnows:
      out << 'D' << group_.to_string() << '(' << children_[0]->to_string()
          << ')';
      break;
    case FormulaKind::kEveryoneKnows:
      out << 'E' << group_.to_string() << '(' << children_[0]->to_string()
          << ')';
      break;
    case FormulaKind::kCommonKnows:
      out << 'C' << group_.to_string() << '(' << children_[0]->to_string()
          << ')';
      break;
  }
  return out.str();
}

FormulaPtr f_init(ProcessId p, ActionId alpha) {
  std::ostringstream label;
  label << "init_" << p << "(α" << alpha << ')';
  return Formula::prim_monotone(
      label.str(), [p, alpha](const Run& r) -> std::optional<Time> {
        return r.first_event_time(p, [alpha](const Event& e) {
          return e.kind == EventKind::kInit && e.action == alpha;
        });
      });
}

FormulaPtr f_do(ProcessId p, ActionId alpha) {
  std::ostringstream label;
  label << "do_" << p << "(α" << alpha << ')';
  return Formula::prim_monotone(
      label.str(), [p, alpha](const Run& r) -> std::optional<Time> {
        return r.first_event_time(p, [alpha](const Event& e) {
          return e.kind == EventKind::kDo && e.action == alpha;
        });
      });
}

FormulaPtr f_crash(ProcessId p) {
  std::ostringstream label;
  label << "crash(" << p << ')';
  return Formula::prim_monotone(
      label.str(),
      [p](const Run& r) -> std::optional<Time> { return r.crash_time(p); });
}

FormulaPtr f_suspected_by(ProcessId p, ProcessId q) {
  std::ostringstream label;
  label << q << "∈Suspects_" << p;
  return Formula::prim(label.str(), [p, q](const Run& r, Time m) {
    return r.suspects_at(p, m).contains(q);
  });
}

}  // namespace udc
