// Model checker for the §2.3 language over finite systems of runs.
//
//   (R, r, m) |= K_p(phi)  iff phi holds at every (r', m') in R with
//                          r'_p(m') = r_p(m)         — via System's index
//   (R, r, m) |= □phi      iff phi holds at (r, m') for all m' in [m, T_r]
//                                                    — finite surrogate
//   (R, r, m) |= D_S(phi)  iff phi holds at every point indistinguishable
//                          from (r, m) to *all* processes in S
//
// Truth values are memoized per (formula node, point); temporal operators
// are filled bottom-up over each run to stay linear in the horizon.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "udc/event/system.h"
#include "udc/logic/formula.h"

namespace udc {

class ModelChecker {
 public:
  explicit ModelChecker(const System& sys) : sys_(sys) {}

  bool holds_at(Point at, const FormulaPtr& f);

  // R |= phi: true at every point of the system.
  bool valid(const FormulaPtr& f);

  // The first point where f fails, if any (diagnostic witness).
  std::optional<Point> find_counterexample(const FormulaPtr& f);

  std::size_t cache_entries() const { return cache_size_; }

 private:
  enum class Tri : std::uint8_t { kUnknown, kTrue, kFalse };

  std::size_t point_index(Point at) const {
    return at.run * static_cast<std::size_t>(sys_.max_horizon() + 1) +
           static_cast<std::size_t>(at.m);
  }

  bool eval(Point at, const Formula& f);

  const System& sys_;
  // Per formula node, one tri-state per point of the system.  The cache is
  // keyed by node address, so every queried root is retained: releasing a
  // formula and allocating a new one at the same address must not resurrect
  // stale entries.
  std::vector<FormulaPtr> retained_;
  std::unordered_map<const Formula*, std::vector<Tri>> cache_;
  std::size_t cache_size_ = 0;
};

}  // namespace udc
