// Model checker for the §2.3 language over finite systems of runs.
//
//   (R, r, m) |= K_p(phi)  iff phi holds at every (r', m') in R with
//                          r'_p(m') = r_p(m)         — via System's index
//   (R, r, m) |= □phi      iff phi holds at (r, m') for all m' in [m, T_r]
//                                                    — finite surrogate
//   (R, r, m) |= D_S(phi)  iff phi holds at every point indistinguishable
//                          from (r, m) to *all* processes in S
//
// Truth values are memoized per (formula node, point); temporal operators
// are filled bottom-up over each run to stay linear in the horizon.
//
// Engine layout (see DESIGN.md "Checker architecture"):
//   * Every queried formula DAG is interned once: each node gets a dense
//     id (children before parents), its children resolved to ids, so the
//     hot evaluation loop never touches a hash table or a pointer map.
//   * The memo cache is a flat table per formula id, 2 bits per point
//     (unknown / true / false), allocated lazily on the first verdict for
//     that formula — leaf primitives that are never asked about a run cost
//     nothing, and a filled table costs 1/4 byte per point instead of 1.
//   * Points are numbered densely via System::point_index: run i's points
//     occupy [point_offset(i), point_offset(i) + horizon_i + 1], so systems
//     with mixed horizons waste no slots.
//
// The *_parallel entry points shard the root point space run-wise across a
// worker pool; each worker owns a private checker over the shared read-only
// System, so verdicts (and the reported counterexample) are bit-identical
// to the serial path at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "udc/common/budget.h"
#include "udc/event/system.h"
#include "udc/logic/formula.h"

namespace udc {

// Partial verdict from a budgeted validity check (graceful degradation):
// instead of OOM-ing on a formula whose memo tables outgrow memory or
// stalling past a deadline, the checker stops between root points and
// reports how far it got.
struct BudgetedVerdict {
  BudgetStatus status = BudgetStatus::kComplete;
  // Set when the verdict is decided: false as soon as a counterexample is
  // found (even under a tripped budget — a witness is a witness), true only
  // when every point was checked.  Unset iff the budget tripped first.
  std::optional<bool> valid;
  std::optional<Point> counterexample;
  // Root points evaluated before returning.
  std::size_t points_checked = 0;
};

class ModelChecker {
 public:
  explicit ModelChecker(const System& sys) : sys_(sys) {}

  bool holds_at(Point at, const FormulaPtr& f);

  // R |= phi: true at every point of the system.
  bool valid(const FormulaPtr& f);

  // The first point where f fails, if any (diagnostic witness) — first in
  // for_each_point order: smallest run index, then smallest time.
  std::optional<Point> find_counterexample(const FormulaPtr& f);

  // Parallel twins.  `parallelism` = 0 → hardware_concurrency, 1 → the
  // exact legacy serial path (this checker's own cache), k → k workers each
  // claiming whole runs off a shared counter and evaluating with a private
  // checker.  The verdict — and the counterexample point, when one exists —
  // is bit-identical to the serial call at every thread count.  Worker
  // caches are discarded afterwards; this checker's cache is untouched
  // (except at parallelism 1, where the serial path fills it as usual).
  bool valid_parallel(const FormulaPtr& f, unsigned parallelism = 0);
  std::optional<Point> find_counterexample_parallel(const FormulaPtr& f,
                                                    unsigned parallelism = 0);

  // Budgeted validity: scans root points in the serial order and stops with
  // kBudgetExceeded once the budget trips (deadline, max_points, or
  // max_memo_bytes over this checker's cache_bytes()).  Budgets are checked
  // BETWEEN root points, so memory overshoot is bounded by one point's
  // evaluation (deep temporal/epistemic fills included).  With an unlimited
  // budget this is exactly valid()/find_counterexample().
  BudgetedVerdict valid_budgeted(const FormulaPtr& f, const Budget& budget);

  // Number of memo slots actually filled with a verdict (each point decided
  // at most once per formula).  Always equals cache_entries_recount().
  std::size_t cache_entries() const { return cache_size_; }
  // Recount by scanning the packed tables — O(interned formulas × points).
  // The accounting test asserts it against cache_entries().
  std::size_t cache_entries_recount() const;
  // Bytes currently allocated for memo slots (2 bits per point, only for
  // formulas with at least one verdict).
  std::size_t cache_bytes() const;
  // Formulas with at least one verdict — i.e. how many per-formula tables
  // the pre-interning layout (1 byte per point, eagerly sized to
  // runs × (max_horizon + 1)) would have allocated for the same queries.
  std::size_t cache_tables() const;
  // Distinct formula DAG nodes interned so far.
  std::size_t interned_formulas() const { return nodes_.size(); }

 private:
  // 2-bit truth codes packed 32 per uint64_t word.
  static constexpr std::uint64_t kTriUnknown = 0;
  static constexpr std::uint64_t kTriTrue = 1;
  static constexpr std::uint64_t kTriFalse = 2;

  struct Node {
    const Formula* f;
    std::uint32_t first_child;  // index into child_ids_
    std::uint32_t num_children;
  };

  std::size_t point_index(Point at) const { return sys_.point_index(at); }

  std::uint32_t intern(const FormulaPtr& f);
  std::uint32_t intern_node(const Formula* f);

  std::uint64_t slot_get(std::uint32_t fid, std::size_t pi) const {
    const std::vector<std::uint64_t>& t = slots_[fid];
    if (t.empty()) return kTriUnknown;
    return (t[pi >> 5] >> ((pi & 31) * 2)) & 3;
  }
  // Fills the slot if still unknown (verdicts are deterministic, so a filled
  // slot never needs rewriting); counts exactly the transitions from
  // unknown, which is what cache_entries() reports.
  void slot_set(std::uint32_t fid, std::size_t pi, bool v) {
    std::vector<std::uint64_t>& t = slots_[fid];
    if (t.empty()) t.assign(slot_words_(), 0);
    std::uint64_t& w = t[pi >> 5];
    const unsigned shift = (pi & 31) * 2;
    if (((w >> shift) & 3) != kTriUnknown) return;
    w |= (v ? kTriTrue : kTriFalse) << shift;
    ++cache_size_;
  }
  std::size_t slot_words_() const { return (sys_.total_points() + 31) / 32; }

  bool eval(Point at, std::uint32_t fid);

  const System& sys_;
  // Roots are retained so interned node addresses can never be freed and
  // reused: releasing a formula and allocating a new one at the same address
  // must not resurrect stale ids or cache entries.
  std::vector<FormulaPtr> retained_;
  std::unordered_map<const Formula*, std::uint32_t> ids_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> child_ids_;
  // slots_[fid]: packed 2-bit verdicts, one per point; empty until the
  // formula's first verdict.
  std::vector<std::vector<std::uint64_t>> slots_;
  std::size_t cache_size_ = 0;
};

}  // namespace udc
