// udc_explore — interactive scenario explorer for udckit.
//
// Builds one coordination scenario from flags, runs it, and prints any of:
// the event trace, the spec verdicts, coordination metrics, the measured
// detector lattice class, and (over a workload-varied twin system) the
// knowledge frontier of each action.  The debugging workhorse behind the
// library, shipped as a tool.
//
//   build/tools/udc_explore --n=4 --drop=0.3 --detector=strong
//       --crash=2@60 --actions=2 --trace --metrics --lattice
//   build/tools/udc_explore --protocol=nudc --detector=none --knowledge
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "udc/chaos/registry.h"
#include "udc/common/guarded_main.h"
#include "udc/coord/metrics.h"
#include "udc/coord/spec.h"
#include "udc/event/trace.h"
#include "udc/fd/lattice.h"
#include "udc/fd/quality.h"
#include "udc/kt/kbp.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace {

using namespace udc;

struct Options {
  int n = 4;
  Time horizon = 300;
  double drop = 0.3;
  std::uint64_t seed = 1;
  int t = -1;  // failure bound for generalized detector/protocol; -1 = n-1
  int actions = 1;
  std::string detector = "strong";
  std::string protocol = "strongfd";
  std::string channel = "iid";  // iid | burst
  std::string crash;  // "2@60,0@100"
  bool trace = false;
  bool fd_trace = true;
  bool metrics = false;
  bool lattice = false;
  bool knowledge = false;
  bool kbp = false;
  bool quality = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_explore [flags]\n"
      "  --n=<int>             group size (default 4)\n"
      "  --horizon=<int>       simulation horizon (default 300)\n"
      "  --drop=<float>        i.i.d. loss rate (default 0.3)\n"
      "  --seed=<int>          RNG seed (default 1)\n"
      "  --t=<int>             failure bound for generalized mode\n"
      "  --actions=<int>       actions initiated per process (default 1)\n"
      "  --crash=<p@t,...>     crash plan (default: none)\n"
      "  --detector=perfect|strong|quasi|weak|impermanent|ev-strong|\n"
      "             ev-weak|tuseful|trivial|atd|none    (default strong)\n"
      "  --protocol=strongfd|fip|nudc|reliable|generalized|atd|majority\n"
      "  --channel=iid|burst   (burst = Gilbert-Elliott correlated loss)\n"
      "  --trace               print the event trace\n"
      "  --no-fd-trace         omit detector events from the trace\n"
      "  --metrics             print per-action latency/completion\n"
      "  --lattice             classify the detector (CT96 lattice)\n"
      "  --quality             detector QoS (latency, false positives)\n"
      "  --knowledge           print each action's knowledge frontier\n"
      "  --kbp                 check the knowledge-based program guards\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--horizon=", &v)) {
      o.horizon = std::stoll(v);
    } else if (eat("--drop=", &v)) {
      o.drop = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--t=", &v)) {
      o.t = std::stoi(v);
    } else if (eat("--actions=", &v)) {
      o.actions = std::stoi(v);
    } else if (eat("--crash=", &v)) {
      o.crash = v;
    } else if (eat("--detector=", &v)) {
      o.detector = v;
    } else if (eat("--protocol=", &v)) {
      o.protocol = v;
    } else if (eat("--channel=", &v)) {
      o.channel = v;
    } else if (arg == "--quality") {
      o.quality = true;
    } else if (arg == "--trace") {
      o.trace = true;
    } else if (arg == "--no-fd-trace") {
      o.fd_trace = false;
    } else if (arg == "--metrics") {
      o.metrics = true;
    } else if (arg == "--lattice") {
      o.lattice = true;
    } else if (arg == "--knowledge") {
      o.knowledge = true;
    } else if (arg == "--kbp") {
      o.kbp = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  if (o.t < 0) o.t = o.n - 1;
  return o;
}

CrashPlan parse_crash(const Options& o) {
  std::vector<std::pair<ProcessId, Time>> crashes;
  std::string spec = o.crash;
  while (!spec.empty()) {
    auto comma = spec.find(',');
    std::string item = spec.substr(0, comma);
    spec = comma == std::string::npos ? "" : spec.substr(comma + 1);
    auto at = item.find('@');
    if (at == std::string::npos) usage();
    crashes.emplace_back(std::stoi(item.substr(0, at)),
                         std::stoll(item.substr(at + 1)));
  }
  return make_crash_plan(o.n, std::move(crashes));
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_explore", [&] {
  Options o = parse(argc, argv);
  SimConfig cfg;
  cfg.n = o.n;
  cfg.horizon = o.horizon;
  cfg.channel.drop_prob = o.drop;
  if (o.channel == "burst") {
    // Average loss ~= drop with bursts ~5 ticks long.
    cfg.channel.custom_policy = std::make_shared<GilbertElliottPolicy>(
        o.drop / (5.0 * (1.0 - o.drop) + 1e-9), 0.2);
  }
  cfg.seed = o.seed;
  auto workload = make_workload(o.n, o.actions, 5, 7);
  auto actions = workload_actions(workload);
  CrashPlan plan = parse_crash(o);
  // Shared with the chaos tools: unknown names throw InvariantViolation,
  // which guarded_main turns into exit 1 with the name in the message.
  OracleFactory oracle_factory = oracle_factory_by_name(o.detector, o.t);
  ProtocolFactory protocol = protocol_factory_by_name(o.protocol, o.t);

  std::unique_ptr<FdOracle> oracle;
  if (oracle_factory) oracle = oracle_factory();
  SimResult res = simulate(cfg, plan, oracle.get(), workload, protocol);
  const Run& r = res.run;

  std::printf("scenario: n=%d horizon=%lld drop=%.2f seed=%llu protocol=%s "
              "detector=%s F=%s\n",
              o.n, static_cast<long long>(o.horizon), o.drop,
              static_cast<unsigned long long>(o.seed), o.protocol.c_str(),
              o.detector.c_str(), r.faulty_set().to_string().c_str());
  std::printf("traffic: %zu sent, %zu dropped, last send at t=%lld\n",
              res.messages_sent, res.messages_dropped,
              static_cast<long long>(last_send_time(r)));

  if (o.trace) {
    TraceOptions topts;
    topts.include_fd_events = o.fd_trace;
    std::fputs(format_run(r, topts).c_str(), stdout);
  }

  Time grace = o.horizon / 3;
  CoordReport udc = check_udc(r, actions, grace);
  CoordReport nudc = check_nudc(r, actions, grace);
  std::printf("spec: UDC=%s nUDC=%s (grace %lld)\n",
              udc.achieved() ? "ACHIEVED" : "VIOLATED",
              nudc.achieved() ? "ACHIEVED" : "VIOLATED",
              static_cast<long long>(grace));
  for (const std::string& v : udc.violations) {
    std::printf("  %s\n", v.c_str());
  }

  if (o.metrics) {
    std::printf("metrics:\n");
    for (ActionId a : actions) {
      ActionMetrics m = measure_action(r, a);
      if (!m.initiated_at) {
        std::printf("  α%lld: never initiated\n", static_cast<long long>(a));
        continue;
      }
      std::printf("  α%-10lld init=%-5lld first-do=%-5lld done=%-5lld "
                  "latency=%lld\n",
                  static_cast<long long>(a),
                  static_cast<long long>(*m.initiated_at),
                  static_cast<long long>(m.first_do.value_or(-1)),
                  static_cast<long long>(m.completed_at.value_or(-1)),
                  static_cast<long long>(m.latency().value_or(-1)));
    }
  }

  if (o.lattice) {
    std::printf("detector lattice class: %s\n",
                ct_class_name(classify_ct(r, grace)));
  }

  if (o.quality) {
    FdQuality q = measure_fd_quality(r);
    std::printf("detector QoS: detections=%zu missed=%zu lat(mean/max)="
                "%.1f/%lld false-positive-rate=%.3f report-load=%.3f\n",
                q.detections, q.missed, q.mean_detection_latency,
                static_cast<long long>(q.max_detection_latency),
                q.false_positive_rate, q.report_load);
  }

  if (o.knowledge || o.kbp) {
    // Knowledge needs epistemic alternatives: regenerate as a twin system
    // (power-set workloads, crash/no-crash plans, shared seed).
    auto workloads = workload_power_set(workload);
    std::vector<CrashPlan> plans{plan};
    if (!plan.faulty_set().empty()) plans.push_back(no_crashes(o.n));
    System sys = generate_system_multi(cfg, plans, workloads, oracle_factory,
                                       protocol, 1);
    // Locate this scenario inside the system: the run with the scenario's
    // faulty set in which every action was initiated (the full workload).
    std::size_t here = 0;
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Run& cand = sys.run(i);
      if (cand.faulty_set() != r.faulty_set()) continue;
      bool all_inits = true;
      for (const InitDirective& d : workload) {
        // The init must be present unless its owner crashed before it fired.
        bool owner_died_first =
            cand.is_faulty(d.p) && *cand.crash_time(d.p) <= d.at;
        all_inits &= cand.init_in(d.p, cand.horizon(), d.action) ||
                     owner_died_first;
      }
      if (all_inits) {
        here = i;
        break;
      }
    }
    ModelChecker mc(sys);
    if (o.knowledge) {
      std::printf("knowledge frontier (system of %zu runs; run %zu = this "
                  "scenario):\n", sys.size(), here);
      for (ActionId a : actions) {
        ProcessId owner = action_owner(a);
        std::printf("  α%lld (owner p%d): first K_q(init) at t = [",
                    static_cast<long long>(a), owner);
        for (ProcessId q = 0; q < o.n; ++q) {
          auto first = first_knowledge_time(mc, sys, here, q,
                                            f_init(owner, a));
          std::printf("%s%lld", q == 0 ? "" : ", ",
                      static_cast<long long>(first.value_or(-1)));
        }
        std::printf("]  (-1 = never)\n");
      }
    }
    if (o.kbp) {
      KbpReport rep = check_kbp(mc, sys, actions);
      std::printf("knowledge-based program: %zu perform points, K1 %zu/%zu, "
                  "K2 %zu/%zu -> %s\n",
                  rep.perform_points, rep.k1_holds, rep.perform_points,
                  rep.k2_holds, rep.k2_points,
                  rep.implements() ? "IMPLEMENTED" : "VIOLATED");
      for (const std::string& v : rep.violations) {
        std::printf("  %s\n", v.c_str());
      }
    }
  }
  return udc.achieved() ? 0 : 1;
  });
}
