// udc_svc_node — ONE replica of the replicated coordination service as one
// OS process.
//
// Not normally run by hand: the service fleet supervisor (svc/fleet.h,
// driven by udc_svc_soak / udc_svc_load) forks one of these per replica and
// the interesting thing that happens to it is a SIGKILL while it is leader
// with client batches in flight.  Every flag is also checkable from a
// shell, which is what the malformed-invocation ctest arms exercise.
//
//   udc_svc_node --id=0 --n=3 --supervisor-port=7001 --dir=/tmp/r0
//
// Exit codes: 0 clean stop (supervisor said kStop); 1 internal invariant
// breach; 2 malformed invocation; 3 orphaned (supervisor stream stayed down
// past the watchdog).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "udc/common/check.h"
#include "udc/common/guarded_main.h"
#include "udc/svc/node.h"

namespace {

using namespace udc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_svc_node --id=<pid> --n=<int> --supervisor-port=<port> "
      "--dir=<dir> [flags]\n"
      "  --epoch=<int>           incarnation; > 0 recovers WAL + service log\n"
      "  --run-id=<int>          fleet run id (handshake guard)\n"
      "  --data-port=<port>      data listen port (default ephemeral)\n"
      "  --script=<file>         chaos script lowered at this node\n"
      "  --seed=<int>            jitter stream\n"
      "  --hb-interval=<t> --hb-timeout=<t>  heartbeat pacing, ticks\n"
      "  --lease-ms=<int>        leader lease window, wall ms\n"
      "  --batch-ops=<int>       max client ops per sealed batch\n"
      "  --seal-us=<int>         seal pacing, wall microseconds\n"
      "  --inflight=<int>        max uncommitted slots before backpressure\n"
      "  --admission-cap=<int>   pending-op budget before kRetryLater\n"
      "  --resend-us=<int>       re-propose / offer pacing, microseconds\n"
      "  --orphan-ms=<int>       exit 3 after this long without a supervisor\n");
  std::exit(2);
}

SvcNodeOptions parse(int argc, char** argv) {
  SvcNodeOptions o;
  bool have_id = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--id=", &v)) {
      o.id = static_cast<ProcessId>(std::stoi(v));
      have_id = true;
    } else if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--epoch=", &v)) {
      o.epoch = std::stoull(v);
    } else if (eat("--run-id=", &v)) {
      o.run_id = std::stoull(v);
    } else if (eat("--supervisor-port=", &v)) {
      o.supervisor_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (eat("--data-port=", &v)) {
      o.data_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (eat("--dir=", &v)) {
      o.dir = v;
    } else if (eat("--script=", &v)) {
      o.script_file = v;
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--hb-interval=", &v)) {
      o.heartbeat.interval = std::stoll(v);
    } else if (eat("--hb-timeout=", &v)) {
      o.heartbeat.initial_timeout = std::stoll(v);
    } else if (eat("--lease-ms=", &v)) {
      o.lease_window = std::chrono::milliseconds(std::stoll(v));
    } else if (eat("--batch-ops=", &v)) {
      o.max_batch_ops = std::stoi(v);
    } else if (eat("--seal-us=", &v)) {
      o.seal_interval = std::chrono::microseconds(std::stoll(v));
    } else if (eat("--inflight=", &v)) {
      o.max_inflight_slots = std::stoi(v);
    } else if (eat("--admission-cap=", &v)) {
      o.admission_cap = static_cast<std::size_t>(std::stoull(v));
    } else if (eat("--resend-us=", &v)) {
      o.resend_interval = std::chrono::microseconds(std::stoll(v));
    } else if (eat("--orphan-ms=", &v)) {
      o.orphan_after = std::chrono::milliseconds(std::stoll(v));
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_svc_node: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  // Malformed invocations are a USER error, not an invariant breach: one
  // line, exit 2, before any socket or file is touched.
  if (!have_id || o.n < 1 || o.n > kMaxProcesses || o.id < 0 ||
      o.id >= o.n) {
    std::fprintf(stderr, "udc_svc_node: bad or missing --id/--n\n");
    usage();
  }
  if (o.supervisor_port == 0) {
    std::fprintf(stderr, "udc_svc_node: --supervisor-port required\n");
    usage();
  }
  if (o.dir.empty() || !std::filesystem::is_directory(o.dir)) {
    std::fprintf(stderr, "udc_svc_node: --dir missing or not a directory\n");
    usage();
  }
  if (!o.script_file.empty() && !std::filesystem::exists(o.script_file)) {
    std::fprintf(stderr, "udc_svc_node: --script file does not exist\n");
    usage();
  }
  if (o.max_batch_ops < 1 || o.max_inflight_slots < 1) {
    std::fprintf(stderr, "udc_svc_node: bad batching limits\n");
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_svc_node", [&] {
    SvcNodeOptions o = parse(argc, argv);
    try {
      return run_svc_node(o);
    } catch (const InvariantViolation& e) {
      if (std::strstr(e.what(), "bind") != nullptr) {
        std::fprintf(stderr, "udc_svc_node: cannot bind data port: %s\n",
                     e.what());
        return 2;
      }
      throw;
    }
  });
}
