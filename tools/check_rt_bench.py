#!/usr/bin/env python3
"""Guards the live-runtime hot path against perf regressions.

Compares a fresh bench_rt_throughput run against the checked-in reference
(BENCH_pr6.json) row by row and fails on a >FACTOR regression:

  * throughput rows (events_per_sec > 0 in the reference): fail when the
    fresh run achieves less than 1/FACTOR of the reference rate,
  * latency rows (the lift benchmarks, events_per_sec == 0): fail when the
    fresh ns_per_op exceeds FACTOR times the reference.

FACTOR defaults to 2.0 — loose on purpose: CI runners are noisy and differ
from the box that produced the reference, so the gate only catches real
structural regressions (a reintroduced global lock, an fsync back on the
append path), not scheduler jitter.  Rows present in only one file are
reported but never fatal, so adding or retiring benchmarks does not require
a lockstep reference update.

Usage: check_rt_bench.py <reference.json> <fresh.json> [factor]
"""
import json
import sys


def load_rows(path):
    with open(path) as f:
        return {row["bench"]: row for row in json.load(f)}


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <reference.json> <fresh.json> [factor]")
    ref = load_rows(sys.argv[1])
    fresh = load_rows(sys.argv[2])
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failures = []
    for name, r in sorted(ref.items()):
        f = fresh.get(name)
        if f is None:
            print(f"note: {name} missing from fresh run (skipped)")
            continue
        if r["events_per_sec"] > 0:
            ratio = f["events_per_sec"] / r["events_per_sec"]
            verdict = "FAIL" if ratio < 1.0 / factor else "ok"
            print(f"{verdict:4} {name}: {f['events_per_sec']:.0f} ev/s "
                  f"vs ref {r['events_per_sec']:.0f} ({ratio:.2f}x)")
            if ratio < 1.0 / factor:
                failures.append(name)
        elif r["ns_per_op"] > 0:
            ratio = f["ns_per_op"] / r["ns_per_op"]
            verdict = "FAIL" if ratio > factor else "ok"
            print(f"{verdict:4} {name}: {f['ns_per_op']:.0f} ns/op "
                  f"vs ref {r['ns_per_op']:.0f} ({ratio:.2f}x)")
            if ratio > factor:
                failures.append(name)
    for name in sorted(set(fresh) - set(ref)):
        print(f"note: {name} not in reference (skipped)")

    if failures:
        sys.exit(f"{len(failures)} row(s) regressed by more than "
                 f"{factor}x: {', '.join(failures)}")
    print(f"all {len(ref)} reference rows within {factor}x")


if __name__ == "__main__":
    main()
