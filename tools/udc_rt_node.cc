// udc_rt_node — ONE process of the paper's model as one OS process.
//
// Not normally run by hand: the fleet supervisor (rt/remote/fleet.h, driven
// by udc_mp_soak) forks one of these per process, and the interesting thing
// that happens to it is a SIGKILL mid-run.  Every flag the supervisor passes
// is also checkable from a shell, which is what the malformed-invocation
// ctest arms exercise.
//
//   udc_rt_node --id=0 --n=3 --t=1 --supervisor-port=7001 --wal-dir=/tmp/r0
//
// Exit codes: 0 clean stop (supervisor said kStop); 1 internal invariant
// breach; 2 malformed invocation (bad id, missing WAL dir, unusable port);
// 3 orphaned (the supervisor stream stayed down past the watchdog).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "udc/common/check.h"
#include "udc/common/guarded_main.h"
#include "udc/rt/remote/node.h"

namespace {

using namespace udc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_rt_node --id=<pid> --n=<int> --supervisor-port=<port> "
      "--wal-dir=<dir> [flags]\n"
      "  --t=<int>               failure bound (default 1)\n"
      "  --protocol=<name>       strongfd | majority (default strongfd)\n"
      "  --resend-interval=<t>   protocol resend pacing, ticks\n"
      "  --epoch=<int>           incarnation; > 0 recovers from the WAL\n"
      "  --run-id=<int>          fleet run id (handshake guard)\n"
      "  --data-port=<port>      data listen port (default ephemeral)\n"
      "  --script=<file>         chaos script lowered at this node\n"
      "  --background-drop=<f>   i.i.d. loss on outbound data frames\n"
      "  --seed=<int>            chaos/backoff jitter stream\n"
      "  --hb-interval=<t> --hb-timeout=<t>  heartbeat pacing, ticks\n");
  std::exit(2);
}

NodeOptions parse(int argc, char** argv) {
  NodeOptions o;
  bool have_id = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--id=", &v)) {
      o.id = static_cast<ProcessId>(std::stoi(v));
      have_id = true;
    } else if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--t=", &v)) {
      o.t = std::stoi(v);
    } else if (eat("--protocol=", &v)) {
      o.protocol = v;
    } else if (eat("--resend-interval=", &v)) {
      o.resend_interval = std::stoll(v);
    } else if (eat("--epoch=", &v)) {
      o.epoch = std::stoull(v);
    } else if (eat("--run-id=", &v)) {
      o.run_id = std::stoull(v);
    } else if (eat("--supervisor-port=", &v)) {
      o.supervisor_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (eat("--data-port=", &v)) {
      o.data_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (eat("--wal-dir=", &v)) {
      o.wal_dir = v;
    } else if (eat("--script=", &v)) {
      o.script_file = v;
    } else if (eat("--background-drop=", &v)) {
      o.background_drop = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--hb-interval=", &v)) {
      o.heartbeat.interval = std::stoll(v);
    } else if (eat("--hb-timeout=", &v)) {
      o.heartbeat.initial_timeout = std::stoll(v);
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_rt_node: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  // Malformed invocations are a USER error, not an invariant breach: one
  // line, exit 2, before any socket or file is touched.
  if (!have_id || o.n < 1 || o.n > kMaxProcesses || o.id < 0 ||
      o.id >= o.n || o.t < 0 || o.t >= o.n) {
    std::fprintf(stderr, "udc_rt_node: bad or missing --id/--n/--t\n");
    usage();
  }
  if (o.supervisor_port == 0) {
    std::fprintf(stderr, "udc_rt_node: --supervisor-port required\n");
    usage();
  }
  if (o.wal_dir.empty() || !std::filesystem::is_directory(o.wal_dir)) {
    std::fprintf(stderr, "udc_rt_node: --wal-dir missing or not a directory\n");
    usage();
  }
  if (!o.script_file.empty() && !std::filesystem::exists(o.script_file)) {
    std::fprintf(stderr, "udc_rt_node: --script file does not exist\n");
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_rt_node", [&] {
    NodeOptions o = parse(argc, argv);
    try {
      return run_node(o);
    } catch (const InvariantViolation& e) {
      // An unbindable data port is an environment problem (port in use),
      // not a broken invariant: report it like the other usage errors.
      if (std::strstr(e.what(), "bind") != nullptr) {
        std::fprintf(stderr, "udc_rt_node: cannot bind data port: %s\n",
                     e.what());
        return 2;
      }
      throw;
    }
  });
}
