// udc_svc_load — open-loop load generator + bench harness for the
// replicated coordination service.
//
// Runs the service fleet (svc/fleet.h) with NO chaos arm at one or more
// load points: heavy-tailed (bounded-Pareto) arrivals, a mix of session
// writes and lease reads, latency measured client-side from FIRST submit to
// completion — retries, redirects, and backpressure waits all count.  Every
// run's committed history still goes through the full checker stack
// (DC1-DC3 on the lifted run, exactly-once sessions, log agreement): a
// throughput number from a non-conformant run is worthless and the tool
// refuses to report one (exit 1).
//
//   build/tools/udc_svc_load --out=BENCH_service.json
//   build/tools/udc_svc_load --ops=2000 --mean-us=300   # one custom point
//
// Output: one JSON row per load point with ops/sec and p50/p99/p999 ms.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "udc/common/guarded_main.h"
#include "udc/rt/remote/watchdog.h"
#include "udc/svc/fleet.h"

namespace {

using namespace udc;

struct Options {
  int n = 3;
  int clients = 2;
  int ops = 0;            // 0 = the standard sweep
  double mean_us = 0;
  std::uint64_t seed = 1;
  long long deadline_ms = 30'000;
  std::string dir;
  std::string node_binary;
  std::string out;  // JSON path ("" = stdout only)
};

struct LoadPoint {
  const char* name;
  int ops;
  double mean_us;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_svc_load [flags]\n"
      "  --n=<int>            fleet size (default 3)\n"
      "  --clients=<int>      client instances (default 2)\n"
      "  --ops=<int>          ops for a single custom point (default: sweep)\n"
      "  --mean-us=<float>    mean interarrival for the custom point\n"
      "  --seed=<int>         base seed\n"
      "  --deadline-ms=<int>  per-point wall budget\n"
      "  --dir=<path>         scratch root\n"
      "  --node=<path>        udc_svc_node binary (default: sibling)\n"
      "  --out=<path>         write JSON rows here\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--clients=", &v)) {
      o.clients = std::stoi(v);
    } else if (eat("--ops=", &v)) {
      o.ops = std::stoi(v);
    } else if (eat("--mean-us=", &v)) {
      o.mean_us = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--deadline-ms=", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (eat("--dir=", &v)) {
      o.dir = v;
    } else if (eat("--node=", &v)) {
      o.node_binary = v;
    } else if (eat("--out=", &v)) {
      o.out = v;
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_svc_load: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  if (o.n < 1 || o.n > kMaxProcesses || o.clients < 1 ||
      o.deadline_ms < 1 || o.ops < 0 || o.mean_us < 0) {
    std::fprintf(stderr, "udc_svc_load: flag out of range\n");
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_svc_load", [&] {
    Options o = parse(argc, argv);

    std::string node_binary = o.node_binary;
    if (node_binary.empty()) {
      node_binary = (std::filesystem::path(argv[0]).parent_path() /
                     "udc_svc_node")
                        .string();
    }
    if (!std::filesystem::exists(node_binary)) {
      std::fprintf(stderr, "udc_svc_load: node binary not found: %s\n",
                   node_binary.c_str());
      usage();
    }
    std::string root = o.dir;
    if (root.empty()) {
      root = (std::filesystem::temp_directory_path() /
              ("udc_svc_load." + std::to_string(::getpid())))
                 .string();
    }
    std::filesystem::create_directories(root);

    std::vector<LoadPoint> points;
    if (o.ops > 0) {
      points.push_back({"custom", o.ops, o.mean_us > 0 ? o.mean_us : 800});
    } else {
      // The standard sweep: moderate pacing, then pressure (arrivals near
      // the seal pipeline's rate), then a burst-heavy overload point where
      // kRetryLater backpressure must carry the tail.
      points.push_back({"steady", 600, 1'200});
      points.push_back({"pressure", 1'200, 400});
      points.push_back({"overload", 1'600, 150});
    }

    std::string json = "[\n";
    bool all_ok = true;
    bool first = true;
    for (const LoadPoint& pt : points) {
      SvcFleetOptions f;
      f.n = o.n;
      f.arm = SvcChaosArm::kNone;
      f.seed = o.seed;
      f.run_dir =
          (std::filesystem::path(root) / ("load-" + std::string(pt.name)))
              .string();
      f.node_binary = node_binary;
      f.clients = o.clients;
      f.ops = pt.ops;
      f.mean_interarrival_us = pt.mean_us;
      f.deadline = std::chrono::milliseconds(o.deadline_ms);
      ArmWatchdog dog(
          std::chrono::milliseconds(3 * o.deadline_ms + 15'000), [&] {
            std::fprintf(stderr, "watchdog: load point %s hung; dumping %s\n",
                         pt.name, f.run_dir.c_str());
            dump_run_dir_diagnostics(f.run_dir);
          });
      SvcFleetVerdict v = run_svc_fleet(f);
      dog.cancel();
      all_ok = all_ok && v.conformant;

      std::printf(
          "point %-9s ops=%-5d mean_us=%-6.0f -> %7.0f ops/s  "
          "p50=%.2fms p99=%.2fms p999=%.2fms  conformant=%d\n",
          pt.name, pt.ops, pt.mean_us, v.ops_per_sec, v.latency.p50_ms,
          v.latency.p99_ms, v.latency.p999_ms, v.conformant ? 1 : 0);
      for (const std::string& viol : v.coord.violations) {
        std::printf("        coord violation: %s\n", viol.c_str());
      }
      for (const std::string& viol : v.sessions.violations) {
        std::printf("        session violation: %s\n", viol.c_str());
      }

      char row[512];
      std::snprintf(
          row, sizeof(row),
          "  {\"bench\": \"svc_load/%s\", \"n\": %d, \"clients\": %d, "
          "\"ops\": %d, \"mean_interarrival_us\": %.0f, "
          "\"ops_per_sec\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"p999_ms\": %.3f, \"completions\": %llu, \"conformant\": %s}",
          pt.name, o.n, o.clients, pt.ops, pt.mean_us, v.ops_per_sec,
          v.latency.p50_ms, v.latency.p99_ms, v.latency.p999_ms,
          static_cast<unsigned long long>(v.completions),
          v.conformant ? "true" : "false");
      if (!first) json += ",\n";
      json += row;
      first = false;

      std::error_code ec;
      std::filesystem::remove_all(f.run_dir, ec);
    }
    json += "\n]\n";

    if (!o.out.empty()) {
      std::FILE* fp = std::fopen(o.out.c_str(), "w");
      if (!fp) {
        std::fprintf(stderr, "udc_svc_load: cannot write %s\n",
                     o.out.c_str());
        return 1;
      }
      std::fputs(json.c_str(), fp);
      std::fclose(fp);
      std::printf("wrote %s\n", o.out.c_str());
    }
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
    return all_ok ? 0 : 1;
  });
}
