#!/usr/bin/env bash
# Runs the knowledge-machinery benchmarks and writes machine-readable rows
# to a BENCH_*.json file at the repo root, so performance trajectories
# accumulate across PRs.
#
# Usage:
#   tools/run_knowledge_bench.sh [output.json] [extra benchmark flags...]
#
# Examples:
#   tools/run_knowledge_bench.sh                       # -> BENCH_latest.json
#   tools/run_knowledge_bench.sh BENCH_pr1.json
#   tools/run_knowledge_bench.sh BENCH_pr1.json --benchmark_filter=Sweep
#
# Each row is {bench, n, horizon, threads, ns_per_op}; see
# bench/bench_knowledge_eval.cc for the suite definitions.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-BENCH_latest.json}"
shift || true

build_dir="${BUILD_DIR:-$repo_root/build}"
bench="$build_dir/bench/bench_knowledge_eval"

if [[ ! -x "$bench" ]]; then
  echo "building bench_knowledge_eval in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target bench_knowledge_eval -j >&2
fi

case "$out" in
  /*) : ;;
  *) out="$repo_root/$out" ;;
esac

"$bench" --json "$out" "$@"
echo "wrote $out" >&2
