// udc_mp_soak — cross-process soak: real sockets, real SIGKILL, chaos at
// the wire.
//
// Each run forks a fleet of udc_rt_node processes (rt/remote/fleet.h) and
// cycles through four arms: baseline (background loss only), kill-recover
// (a scripted SIGKILL, epoch+1 relaunch, WAL recovery + kRejoin),
// partition (a bidirectional window lowered to real connection teardown +
// handshake refusal), and burst/silence (correlated loss in the socket
// shim).  Every run's WAL shards are merged into one model Run and pushed
// through the DC1-DC3 / FD checkers — the exit code is the conformance
// claim.
//
// After the soak arms, one DAGGER ARM reproduces a Table-1 † impossibility
// over real sockets: majority protocol at n=3 with t=2 (it requires
// t < n/2), the third node partitioned away for the whole run, and both
// performers SIGKILLed the moment their do_p is durable.  The merged run
// MUST violate DC2 (a correct process never performs); reproducing the
// violation is part of the exit criterion.
//
//   build/tools/udc_mp_soak                  # 50 runs + dagger arm
//   build/tools/udc_mp_soak --runs=8 --quiet # CI-sized
//
// Exit 0 iff every soak run is conformant AND the dagger arm reproduces the
// violation; 1 otherwise; 2 on bad flags.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "udc/chaos/fault_script.h"
#include "udc/common/guarded_main.h"
#include "udc/coord/action.h"
#include "udc/rt/remote/fleet.h"
#include "udc/rt/remote/watchdog.h"

namespace {

using namespace udc;

struct Options {
  int runs = 50;
  int n = 3;
  int t = 1;
  double drop = 0.03;
  std::uint64_t seed = 1;
  long long deadline_ms = 20'000;  // per run
  std::string dir;                 // scratch root (default: under /tmp)
  std::string node_binary;         // default: next to this binary
  bool quiet = false;
  bool dagger = true;
  bool keep = false;  // keep per-run scratch dirs (debugging)
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_mp_soak [flags]\n"
      "  --runs=<int>         soak runs (default 50)\n"
      "  --n=<int> --t=<int>  fleet size / failure bound\n"
      "  --drop=<float>       background i.i.d. wire loss (default 0.03)\n"
      "  --seed=<int>         base seed (run i uses seed+i)\n"
      "  --deadline-ms=<int>  per-run wall-clock budget\n"
      "  --dir=<path>         scratch root for WAL shards and logs\n"
      "  --node=<path>        udc_rt_node binary (default: sibling)\n"
      "  --no-dagger          skip the Table-1 dagger arm\n"
      "  --keep               keep per-run scratch directories\n"
      "  --quiet              summary lines only\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--runs=", &v)) {
      o.runs = std::stoi(v);
    } else if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--t=", &v)) {
      o.t = std::stoi(v);
    } else if (eat("--drop=", &v)) {
      o.drop = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--deadline-ms=", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (eat("--dir=", &v)) {
      o.dir = v;
    } else if (eat("--node=", &v)) {
      o.node_binary = v;
    } else if (arg == "--no-dagger") {
      o.dagger = false;
    } else if (arg == "--keep") {
      o.keep = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_mp_soak: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  if (o.runs < 0 || o.n < 2 || o.n > kMaxProcesses || o.t < 0 ||
      o.t >= o.n || o.deadline_ms < 1 || o.drop < 0 || o.drop >= 1) {
    std::fprintf(stderr, "udc_mp_soak: flag out of range\n");
    usage();
  }
  return o;
}

// The four soak arms.  Crashes ride the supervisor (SIGKILL); everything
// else is wire chaos lowered inside the nodes' socket shims.
FleetOptions make_arm(const Options& o, int i, const std::string& run_dir,
                      const std::string& node_binary) {
  FleetOptions f;
  f.n = o.n;
  f.t = o.t;
  f.protocol = (i % 2 == 0) ? "strongfd" : "majority";
  f.seed = o.seed + static_cast<std::uint64_t>(i);
  f.background_drop = o.drop;
  f.run_dir = run_dir;
  f.node_binary = node_binary;
  f.deadline = std::chrono::milliseconds(o.deadline_ms);
  f.workload = make_workload(o.n, /*per_process=*/1, /*start=*/60,
                             /*spacing=*/40);
  switch (i % 4) {
    case 0:  // baseline: background loss only
      break;
    case 1: {  // kill-recover: SIGKILL + epoch+1 relaunch via the WAL
      f.restartable_crashes = true;
      f.restart_after = 300;
      CrashInjection c;
      c.victim = static_cast<ProcessId>(1 + (i / 4) % (o.n - 1));
      c.at = 150;
      f.script.crashes.push_back(c);
      break;
    }
    case 2: {  // partition: a healing bidirectional cut, torn at the socket
      PartitionWindow w;
      w.senders = ProcSet::full(o.n - 1);  // everyone but the last
      w.recipients = ProcSet::singleton(o.n - 1);
      w.from = 100;
      w.heal = 600;
      f.script.partitions.push_back(w);
      PartitionWindow rev;
      rev.senders = w.recipients;
      rev.recipients = w.senders;
      rev.from = 100;
      rev.heal = 600;
      f.script.partitions.push_back(rev);
      break;
    }
    case 3: {  // burst + silence: correlated loss in the shim
      BurstSegment b;
      b.begin = 80;
      b.end = 400;
      f.script.bursts.push_back(b);
      SilenceWindow s;
      s.from = 0;
      s.to = o.n - 1;
      s.begin = 100;
      s.end = 300;
      f.script.silences.push_back(s);
      break;
    }
  }
  return f;
}

// The Table-1 dagger arm: majority at t=2 >= n/2 is OUTSIDE its safe zone.
FleetOptions make_dagger(const Options& o, const std::string& run_dir,
                         const std::string& node_binary) {
  FleetOptions f;
  f.n = 3;
  f.t = 2;
  f.protocol = "majority";
  f.seed = o.seed ^ 0xda66e4ull;
  f.background_drop = 0.0;
  f.run_dir = run_dir;
  f.node_binary = node_binary;
  f.deadline = std::chrono::milliseconds(o.deadline_ms);
  f.workload.push_back({/*at=*/60, /*p=*/0, make_action(0, 0)});
  // Node 2 partitioned away for the whole (clamped) run, both directions —
  // lowered to real connection teardown inside the nodes.
  PartitionWindow w;
  w.senders = ProcSet::full(2);  // {0, 1}
  w.recipients = ProcSet::singleton(2);
  w.from = 1;
  f.script.partitions.push_back(w);
  PartitionWindow rev;
  rev.senders = w.recipients;
  rev.recipients = w.senders;
  rev.from = 1;
  f.script.partitions.push_back(rev);
  // SIGKILL each performer the moment its do_p is durable: the violation's
  // timing — knowledge died with the only processes that had it.
  f.kill_after_perform = {0, 1};
  f.settle_after_kills = std::chrono::milliseconds(1'500);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_mp_soak", [&] {
    Options o = parse(argc, argv);

    std::string node_binary = o.node_binary;
    if (node_binary.empty()) {
      node_binary = (std::filesystem::path(argv[0]).parent_path() /
                     "udc_rt_node")
                        .string();
    }
    if (!std::filesystem::exists(node_binary)) {
      std::fprintf(stderr, "udc_mp_soak: node binary not found: %s\n",
                   node_binary.c_str());
      usage();
    }
    std::string root = o.dir;
    if (root.empty()) {
      root = (std::filesystem::temp_directory_path() /
              ("udc_mp_soak." + std::to_string(::getpid())))
                 .string();
    }
    std::filesystem::create_directories(root);

    RuntimeCounters total;
    int conformant = 0;
    int budget_trips = 0;
    for (int i = 0; i < o.runs; ++i) {
      const std::string run_dir =
          (std::filesystem::path(root) / ("run-" + std::to_string(i)))
              .string();
      FleetOptions f = make_arm(o, i, run_dir, node_binary);
      // A hung arm (supervisor wedged past its own deadline) fails loudly
      // with per-node diagnostics instead of hanging CI until the job-level
      // timeout kills it mute.
      ArmWatchdog dog(
          std::chrono::milliseconds(3 * o.deadline_ms + 15'000), [&] {
            std::fprintf(stderr,
                         "watchdog: run %d (arm %d, seed %llu) hung; "
                         "dumping %s\n",
                         i, i % 4,
                         static_cast<unsigned long long>(f.seed),
                         run_dir.c_str());
            dump_run_dir_diagnostics(run_dir);
          });
      FleetVerdict v = run_fleet(f);
      dog.cancel();
      total.merge(v.counters);
      conformant += v.conformant ? 1 : 0;
      budget_trips += v.status == BudgetStatus::kBudgetExceeded ? 1 : 0;
      static const char* kArms[] = {"baseline", "kill-recover", "partition",
                                    "burst"};
      if (!o.quiet || !v.conformant) {
        std::printf("run %3d arm=%-12s proto=%-8s seed=%llu status=%s "
                    "conformant=%d clean_exits=%d horizon=%lld\n",
                    i, kArms[i % 4], f.protocol.c_str(),
                    static_cast<unsigned long long>(f.seed),
                    budget_status_name(v.status), v.conformant ? 1 : 0,
                    v.clean_exits ? 1 : 0,
                    static_cast<long long>(v.run->horizon()));
        std::printf("        %s\n",
                    format_runtime_counters(v.counters).c_str());
        for (const std::string& viol : v.coord.violations) {
          std::printf("        violation: %s\n", viol.c_str());
        }
      }
      if (!o.keep) {
        std::error_code ec;
        std::filesystem::remove_all(run_dir, ec);
      }
    }

    bool dagger_ok = true;
    if (o.dagger) {
      const std::string run_dir =
          (std::filesystem::path(root) / "dagger").string();
      ArmWatchdog dog(
          std::chrono::milliseconds(3 * o.deadline_ms + 15'000), [&] {
            std::fprintf(stderr, "watchdog: dagger arm hung; dumping %s\n",
                         run_dir.c_str());
            dump_run_dir_diagnostics(run_dir);
          });
      FleetVerdict v = run_fleet(make_dagger(o, run_dir, node_binary));
      dog.cancel();
      total.merge(v.counters);
      // The dagger arm REPRODUCES the impossibility: DC2 must be violated
      // on the merged run (somebody performed; a correct process did not).
      dagger_ok = !v.coord.dc2 && v.clean_exits;
      std::printf("dagger: dc2_violated=%d clean_exits=%d crashes=%zu "
                  "(expect dc2_violated=1 — Table 1 dagger over real "
                  "sockets)\n",
                  v.coord.dc2 ? 0 : 1, v.clean_exits ? 1 : 0,
                  v.counters.crashes);
      for (const std::string& viol : v.coord.violations) {
        std::printf("        violation: %s\n", viol.c_str());
      }
      if (!o.keep) {
        std::error_code ec;
        std::filesystem::remove_all(run_dir, ec);
      }
    }
    if (!o.keep) {
      std::error_code ec;
      std::filesystem::remove_all(root, ec);
    }

    std::printf("mp-soak: %d/%d conformant, %d budget-exceeded, dagger=%s\n",
                conformant, o.runs, budget_trips,
                o.dagger ? (dagger_ok ? "reproduced" : "MISSED") : "skipped");
    std::printf("totals: %s\n", format_runtime_counters(total).c_str());
    return (conformant == o.runs && dagger_ok) ? 0 : 1;
  });
}
