#!/usr/bin/env python3
"""Guards the coordination service against perf regressions.

Compares a fresh udc_svc_load run against the checked-in reference
(BENCH_service.json) row by row and fails on a >FACTOR regression:

  * throughput: fail when the fresh ops_per_sec falls below 1/FACTOR of
    the reference,
  * tail latency: fail when the fresh p99_ms exceeds FACTOR times the
    reference (p50/p999 are reported but not gated — the p999 of a few
    hundred samples is too noisy to gate on).

Any non-conformant fresh row fails outright: a throughput number from a
run that broke exactly-once or DC1-DC3 is not a number.

FACTOR defaults to 2.5 — looser than the rt gate because service numbers
include real fdatasyncs, real elections, and scheduler jitter across a
dozen processes.  Rows present in only one file are reported but never
fatal.

Usage: check_svc_bench.py <reference.json> <fresh.json> [factor]
"""
import json
import sys


def load_rows(path):
    with open(path) as f:
        return {row["bench"]: row for row in json.load(f)}


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(f"usage: {sys.argv[0]} <reference.json> <fresh.json> [factor]")
    ref = load_rows(sys.argv[1])
    fresh = load_rows(sys.argv[2])
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else 2.5

    failures = []
    for name, row in sorted(fresh.items()):
        if not row.get("conformant", False):
            print(f"FAIL {name}: fresh run non-conformant")
            failures.append(name)
    for name, r in sorted(ref.items()):
        f = fresh.get(name)
        if f is None:
            print(f"note: {name} missing from fresh run (skipped)")
            continue
        ratio = f["ops_per_sec"] / r["ops_per_sec"] if r["ops_per_sec"] else 1.0
        verdict = "FAIL" if ratio < 1.0 / factor else "ok"
        print(f"{verdict:4} {name}: {f['ops_per_sec']:.0f} ops/s "
              f"vs ref {r['ops_per_sec']:.0f} ({ratio:.2f}x), "
              f"p50 {f['p50_ms']:.2f}ms p999 {f['p999_ms']:.2f}ms")
        if ratio < 1.0 / factor:
            failures.append(name)
        if r.get("p99_ms", 0) > 0:
            lratio = f["p99_ms"] / r["p99_ms"]
            verdict = "FAIL" if lratio > factor else "ok"
            print(f"{verdict:4} {name}: p99 {f['p99_ms']:.2f}ms "
                  f"vs ref {r['p99_ms']:.2f}ms ({lratio:.2f}x)")
            if lratio > factor:
                failures.append(name)
    for name in sorted(set(fresh) - set(ref)):
        print(f"note: {name} not in reference (skipped)")

    if failures:
        sys.exit(f"{len(set(failures))} row(s) failed the {factor}x gate: "
                 f"{', '.join(sorted(set(failures)))}")
    print(f"all {len(ref)} reference rows within {factor}x and conformant")


if __name__ == "__main__":
    main()
