// udc_replay — re-execute a violation witness file bit-identically.
//
// Reads a witness produced by udc_chaos (or tests/fixtures/*.witness),
// regenerates the run from the recorded scenario + fault script, and checks
// that (a) the regenerated event trace equals the saved one byte for byte,
// (b) the re-checked spec verdict matches the saved one, and (c) the spec is
// still violated.  Exit 0 iff all three hold — so a green udc_replay over
// the checked-in fixtures certifies that today's simulator still produces
// yesterday's counterexamples.
//
// Exit codes: 0 reproduced, 1 replay divergence (or internal error), 2 bad
// invocation or malformed/unsupported-version witness file (one-line
// diagnostic on stderr).
//
//   build/tools/udc_replay tests/fixtures/majority_unreliable.witness
//   build/tools/udc_chaos --out=w.witness && build/tools/udc_replay w.witness
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "udc/chaos/witness.h"
#include "udc/common/guarded_main.h"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  UDC_CHECK(in.good(), std::string("cannot open witness file: ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_replay", [&] {
    if (argc != 2 || argv[1][0] == '\0' ||
        std::string(argv[1]) == "--help") {
      std::fprintf(stderr, "usage: udc_replay <witness-file>\n");
      return 2;
    }
    udc::ReplayResult r;
    try {
      r = udc::replay_witness(slurp(argv[1]));
    } catch (const udc::WitnessFormatError& e) {
      // The file, not the replay, is at fault: same exit class as a usage
      // error, one line, no stack of decorations.
      std::fprintf(stderr, "udc_replay: %s\n", e.what());
      return 2;
    }
    const udc::ChaosScenario& sc = r.witness.scenario;
    std::printf("witness: protocol=%s detector=%s n=%d t=%d horizon=%lld "
                "spec=%s injections=%zu\n",
                sc.protocol.c_str(), sc.detector.c_str(), sc.n, sc.t,
                static_cast<long long>(sc.horizon),
                udc::chaos_spec_name(sc.spec),
                r.witness.script.injection_count());
    std::printf("trace:    %s\n", r.trace_matches ? "IDENTICAL" : "DIVERGED");
    std::printf("verdict:  %s (dc1=%d dc2=%d dc3=%d)\n",
                r.verdict_matches ? "MATCHES" : "CHANGED", r.rechecked.dc1,
                r.rechecked.dc2, r.rechecked.dc3);
    std::printf("spec:     %s\n", r.violated ? "VIOLATED" : "achieved");
    std::printf("replay:   %s\n",
                r.reproduced() ? "REPRODUCED" : "NOT REPRODUCED");
    return r.reproduced() ? 0 : 1;
  });
}
