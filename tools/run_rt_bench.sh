#!/usr/bin/env bash
# Runs the live-runtime throughput benchmarks (bench_rt_throughput) and
# writes machine-readable rows to a BENCH_*.json at the repo root, so the
# recording-hot-path trajectory accumulates across PRs and the
# rt-bench-smoke CI job has a checked-in reference to guard.
#
# Usage:
#   tools/run_rt_bench.sh [output.json] [extra benchmark flags...]
#
# Examples:
#   tools/run_rt_bench.sh                          # -> BENCH_rt_latest.json
#   tools/run_rt_bench.sh BENCH_pr5.json
#   tools/run_rt_bench.sh smoke.json --benchmark_min_time=0.1
#
# Each row is {bench, n, threads, events_per_sec, ns_per_op}; events_per_sec
# is the headline number (0 for the lift-latency rows, which are tracked by
# ns_per_op instead).  See bench/bench_rt_throughput.cc for the suites.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-BENCH_rt_latest.json}"
shift || true

build_dir="${BUILD_DIR:-$repo_root/build}"
bench="$build_dir/bench/bench_rt_throughput"

if [[ ! -x "$bench" ]]; then
  echo "building bench_rt_throughput in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target bench_rt_throughput -j >&2
fi

case "$out" in
  /*) : ;;
  *) out="$repo_root/$out" ;;
esac

# One PROCESS per benchmark row, merged afterwards: the durable rows are
# sensitive to what earlier rows leave behind in-process — writeback and
# journal debt plus thousands of committer/worker thread spawns, worth
# ~15-20% on the n=8 group-commit row on the reference box even with the
# bench's own sync-and-settle hook — so every row gets a fresh process and
# measures its configuration, not the suite's history.
mapfile -t rows < <("$bench" --benchmark_list_tests 2>/dev/null)
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
i=0
for r in "${rows[@]}"; do
  "$bench" --json "$tmpdir/$i.json" --benchmark_filter="^$r\$" "$@"
  sync
  i=$((i + 1))
done
python3 - "$out" "$tmpdir" "$i" <<'EOF'
import json, sys, os
out, d, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
rows = []
for i in range(count):
    rows.extend(json.load(open(os.path.join(d, str(i) + ".json"))))
with open(out, "w") as fh:
    fh.write("[\n")
    for i, r in enumerate(rows):
        fh.write("  " + json.dumps(r) + (",\n" if i + 1 < len(rows) else "\n"))
    fh.write("]\n")
EOF
echo "wrote $out" >&2
