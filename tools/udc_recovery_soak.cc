// udc_recovery_soak — kill-and-recover soak: every run hard-kills a worker,
// corrupts its durable state per a scripted StorageFault (torn write,
// truncate-to-synced, bit flip, short read, fsync failure — one of each kind
// in rotation), restarts it FROM DISK, and then re-proves DC1-DC3 and the
// failure-detector properties on the lifted run.  The claim under soak is the
// durability contract of DESIGN.md §9: whatever a faulty disk loses, recovery
// plus the rejoin protocol re-learns, and uniformity (DC2') survives.
//
// Each run gets its own scratch directory under --dir (removed afterwards
// unless --keep) and its own seed; protocols alternate strongfd/majority and
// the durability mode cycles every-N / every-append / never / group-commit
// (single-file batch) / group-commit (aggressive batch) / segmented+staged
// (io_uring-or-auto barrier) / segmented+staged (flusher pool), so the
// truncate-to-synced fault exercises every loss window the store supports —
// including "since the last group commit", per shard and per segment
// (DESIGN.md §10-§11).
//
//   build/tools/udc_recovery_soak                   # 50 runs, the CI soak
//   build/tools/udc_recovery_soak --runs 50 --seed 1
//
// Exit 0 iff every run completed within budget, recovered from disk, and
// passed the spec checkers; 1 otherwise; 2 on bad flags.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "udc/chaos/fault_script.h"
#include "udc/common/guarded_main.h"
#include "udc/coord/action.h"
#include "udc/rt/runtime.h"

namespace {

using namespace udc;

struct Options {
  int runs = 50;
  int n = 4;
  int t = 1;
  int actions_per_process = 1;
  double drop = 0.05;
  std::uint64_t seed = 1;
  long long deadline_ms = 10'000;  // per run
  std::string dir = "soak-scratch";
  bool keep = false;
  bool quiet = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: udc_recovery_soak [flags]   (--flag=v or --flag v)\n"
               "  --runs <int>         soak runs (default 50)\n"
               "  --n <int> --t <int>  group size / failure bound\n"
               "  --actions <int>      actions initiated per process\n"
               "  --drop <float>       background i.i.d. loss (default 0.05)\n"
               "  --seed <int>         base seed (run i uses seed+i)\n"
               "  --deadline-ms <int>  per-run wall-clock budget\n"
               "  --dir <path>         scratch root (default soak-scratch)\n"
               "  --keep               keep per-run WAL/snapshot directories\n"
               "  --quiet              summary line only\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accepts both --flag=value and --flag value.
    auto value = [&](const char* flag, std::string* out) {
      std::string pref = std::string(flag) + "=";
      if (arg.rfind(pref, 0) == 0) {
        *out = arg.substr(pref.size());
        return true;
      }
      if (arg == flag && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    std::string v;
    if (value("--runs", &v)) {
      o.runs = std::stoi(v);
    } else if (value("--n", &v)) {
      o.n = std::stoi(v);
    } else if (value("--t", &v)) {
      o.t = std::stoi(v);
    } else if (value("--actions", &v)) {
      o.actions_per_process = std::stoi(v);
    } else if (value("--drop", &v)) {
      o.drop = std::stod(v);
    } else if (value("--seed", &v)) {
      o.seed = std::stoull(v);
    } else if (value("--deadline-ms", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (value("--dir", &v)) {
      o.dir = v;
    } else if (arg == "--keep") {
      o.keep = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_recovery_soak: unknown flag: %s\n",
                   arg.c_str());
      usage();
    }
  }
  if (o.runs < 1 || o.n < 1 || o.t < 1 || o.t >= o.n ||
      o.actions_per_process < 1 || o.deadline_ms < 1 || o.dir.empty()) {
    std::fprintf(stderr, "udc_recovery_soak: flag out of range\n");
    usage();
  }
  return o;
}

const char* fault_name(StorageFault::Kind k) {
  switch (k) {
    case StorageFault::Kind::kTornWrite: return "torn";
    case StorageFault::Kind::kTruncate: return "truncate";
    case StorageFault::Kind::kBitFlip: return "bitflip";
    case StorageFault::Kind::kShortRead: return "shortread";
    case StorageFault::Kind::kSyncFail: return "syncfail";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_recovery_soak", [&] {
    Options o = parse(argc, argv);

    ScriptGenOptions gen;
    gen.n = o.n;
    gen.horizon = 1'200;
    gen.max_crashes = 0;  // the kill below is forced, not drawn
    gen.max_partitions = 2;
    gen.max_silences = 2;
    gen.max_bursts = 1;
    gen.max_lies = 0;
    gen.max_storage_faults = 2;  // extra drawn faults on top of the forced one

    RuntimeCounters total;
    int ok = 0;
    int conformant = 0;
    int recovered = 0;
    int budget_trips = 0;
    for (int i = 0; i < o.runs; ++i) {
      RtOptions rt;
      rt.n = o.n;
      rt.t = o.t;
      rt.protocol = (i % 2 == 0) ? "strongfd" : "majority";
      rt.restartable_crashes = true;
      rt.workload = make_workload(o.n, o.actions_per_process, 60, 40);
      rt.background_drop = o.drop;
      rt.seed = o.seed + static_cast<std::uint64_t>(i);
      rt.script = generate_fault_script(gen, rt.seed);
      rt.default_deadline = std::chrono::milliseconds(o.deadline_ms);

      // Force the kill-and-recover every run, plus a storage fault of each
      // kind in rotation aimed at the victim's files.  Even runs kill early
      // (tick 40, before the first directive at 60 — a near-empty log, the
      // degenerate recovery).  Odd runs kill the owner of the LAST directive
      // just before it fires — the run cannot complete without the restart,
      // and by then the victim has a rich log, so snapshot+tail replay is
      // what actually gets exercised.
      const bool late_kill = (i % 2 == 1);
      const ProcessId victim = late_kill
                                   ? rt.workload.back().p
                                   : static_cast<ProcessId>(i % o.n);
      const Time kill_at = late_kill ? rt.workload.back().at - 10 : 40;
      rt.script.crashes.push_back({victim, kill_at});
      rt.restart_after = 200;  // return the victim while traffic is live
      StorageFault forced;
      forced.kind = static_cast<StorageFault::Kind>(i % 5);
      forced.victim = victim;
      rt.script.storage_faults.push_back(forced);

      // Cycle the durability level so truncate-to-synced bites differently:
      // every-N leaves a short unsynced tail, every-append leaves none,
      // never can lose the whole log, group commit loses exactly the batch
      // since the last flush, and the segmented/staged arms lose that batch
      // across segment boundaries (staged frames die with the process).
      // Every knob the runtime's default store options now turn on is reset
      // explicitly so each arm tests exactly one configuration.
      const int durability = i % 7;
      rt.store.group_commit = false;
      rt.store.segment_bytes = 0;
      rt.store.ring_frames = 0;
      rt.store.barrier = CommitBarrier::kAuto;
      rt.store.commit_every = 32;
      rt.store.commit_interval = std::chrono::microseconds(500);
      switch (durability) {
        case 0:
          rt.store.fsync = FsyncPolicy::kEveryN;
          rt.store.fsync_every = 8;
          break;
        case 1:
          rt.store.fsync = FsyncPolicy::kEveryAppend;
          break;
        case 2:
          rt.store.fsync = FsyncPolicy::kNever;
          break;
        case 3:
          rt.store.group_commit = true;  // PR-5 single-file batch
          break;
        case 4:
          rt.store.group_commit = true;  // aggressive batching
          rt.store.commit_every = 4;
          rt.store.commit_interval = std::chrono::microseconds(200);
          break;
        case 5:
          // Segmented + staged, tiny segments so every run crosses several
          // segment boundaries and kills land mid-segment and mid-seal.
          rt.store.group_commit = true;
          rt.store.segment_bytes = 1024;
          rt.store.ring_frames = 64;
          rt.store.commit_every = 16;
          rt.store.commit_interval = std::chrono::microseconds(300);
          break;
        case 6:
          // Segmented + staged through the portable flusher pool, with a
          // batch small enough that rounds race the kill constantly.
          rt.store.group_commit = true;
          rt.store.segment_bytes = 1024;
          rt.store.ring_frames = 32;
          rt.store.barrier = CommitBarrier::kPool;
          rt.store.flusher_threads = 2;
          rt.store.commit_every = 4;
          rt.store.commit_interval = std::chrono::microseconds(200);
          break;
      }
      rt.store.snapshot_every = 24;  // small, to exercise rotation
      std::filesystem::path run_dir =
          std::filesystem::path(o.dir) / ("run-" + std::to_string(i));
      rt.durable_dir = run_dir.string();

      RtVerdict v = run_live(rt);

      total.merge(v.counters);
      const bool run_recovered = v.counters.recoveries_total >= 1;
      conformant += v.conformant ? 1 : 0;
      recovered += run_recovered ? 1 : 0;
      budget_trips += v.status == BudgetStatus::kBudgetExceeded ? 1 : 0;
      ok += (v.conformant && run_recovered) ? 1 : 0;
      if (!o.quiet) {
        std::printf(
            "run %3d proto=%-8s fault=%-9s durability=%d seed=%llu status=%s "
            "conformant=%d recovered=%d\n",
            i, rt.protocol.c_str(), fault_name(forced.kind), durability,
            static_cast<unsigned long long>(rt.seed),
            budget_status_name(v.status), v.conformant ? 1 : 0,
            run_recovered ? 1 : 0);
        std::printf("        %s\n",
                    format_runtime_counters(v.counters).c_str());
        for (const std::string& viol : v.coord.violations) {
          std::printf("        violation: %s\n", viol.c_str());
        }
      }
      if (!o.keep) {
        std::error_code ec;
        std::filesystem::remove_all(run_dir, ec);  // best effort
      }
    }
    if (!o.keep) {
      std::error_code ec;
      std::filesystem::remove(o.dir, ec);  // rmdir the root if now empty
    }

    std::printf(
        "recovery soak: %d/%d ok (%d conformant, %d recovered from disk, "
        "%d budget-exceeded)\n",
        ok, o.runs, conformant, recovered, budget_trips);
    std::printf("totals: %s\n", format_runtime_counters(total).c_str());
    return ok == o.runs ? 0 : 1;
  });
}
