// udc_rt_soak — live-runtime soak driver: many seeded concurrent runs under
// generated fault scripts (crashes, healing partitions, link silences, burst
// loss, background i.i.d. drops), each lifted into a model run and re-checked
// by the DC1-DC3 spec checkers.
//
// Runs alternate between the strongfd and majority protocols, and every
// third run makes the scripted crashes restartable (the supervisor restarts
// the worker from its write-ahead log and the verdict checks DC2' instead of
// DC2).  The per-run and aggregate counter lines use the same
// format_runtime_counters path the tests and EXPERIMENTS.md numbers use.
//
//   build/tools/udc_rt_soak                  # 50 runs, the CI soak
//   build/tools/udc_rt_soak --runs=200 --n=5 --t=2 --drop=0.1
//
// Exit 0 iff every run completed within budget and its lifted run passed the
// spec checkers; 1 otherwise; 2 on bad flags.
#include <cstdio>
#include <cstring>
#include <string>

#include "udc/chaos/fault_script.h"
#include "udc/common/guarded_main.h"
#include "udc/coord/action.h"
#include "udc/rt/runtime.h"

namespace {

using namespace udc;

struct Options {
  int runs = 50;
  int n = 4;
  int t = 1;
  int actions_per_process = 2;
  double drop = 0.05;
  std::uint64_t seed = 1;
  long long deadline_ms = 10'000;  // per run
  bool quiet = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: udc_rt_soak [flags]\n"
               "  --runs=<int>         soak runs (default 50)\n"
               "  --n=<int> --t=<int>  group size / failure bound\n"
               "  --actions=<int>      actions initiated per process\n"
               "  --drop=<float>       background i.i.d. loss (default 0.05)\n"
               "  --seed=<int>         base seed (run i uses seed+i)\n"
               "  --deadline-ms=<int>  per-run wall-clock budget\n"
               "  --quiet              summary line only\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--runs=", &v)) {
      o.runs = std::stoi(v);
    } else if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--t=", &v)) {
      o.t = std::stoi(v);
    } else if (eat("--actions=", &v)) {
      o.actions_per_process = std::stoi(v);
    } else if (eat("--drop=", &v)) {
      o.drop = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--deadline-ms=", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_rt_soak: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  if (o.runs < 1 || o.n < 1 || o.t < 0 || o.t >= o.n ||
      o.actions_per_process < 1 || o.deadline_ms < 1) {
    std::fprintf(stderr, "udc_rt_soak: flag out of range\n");
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_rt_soak", [&] {
    Options o = parse(argc, argv);

    ScriptGenOptions gen;
    gen.n = o.n;
    gen.horizon = 1'200;  // logical ticks; live windows are clamped anyway
    gen.max_crashes = o.t;
    gen.max_partitions = 2;
    gen.max_silences = 2;
    gen.max_bursts = 1;
    gen.max_lies = 0;

    RuntimeCounters total;
    int conformant = 0;
    int budget_trips = 0;
    int accuracy_stabilized = 0;
    for (int i = 0; i < o.runs; ++i) {
      RtOptions rt;
      rt.n = o.n;
      rt.t = o.t;
      rt.protocol = (i % 2 == 0) ? "strongfd" : "majority";
      rt.restartable_crashes = (i % 3 == 2);
      rt.workload = make_workload(o.n, o.actions_per_process, 60, 40);
      rt.background_drop = o.drop;
      rt.seed = o.seed + static_cast<std::uint64_t>(i);
      rt.script = generate_fault_script(gen, rt.seed);
      rt.default_deadline = std::chrono::milliseconds(o.deadline_ms);
      RtVerdict v = run_live(rt);

      total.merge(v.counters);
      conformant += v.conformant ? 1 : 0;
      budget_trips += v.status == BudgetStatus::kBudgetExceeded ? 1 : 0;
      accuracy_stabilized += v.accuracy.eventually_strong() ? 1 : 0;
      if (!o.quiet) {
        std::printf("run %3d proto=%-8s restartable=%d seed=%llu status=%s "
                    "conformant=%d horizon=%lld\n",
                    i, rt.protocol.c_str(), rt.restartable_crashes ? 1 : 0,
                    static_cast<unsigned long long>(rt.seed),
                    budget_status_name(v.status), v.conformant ? 1 : 0,
                    static_cast<long long>(v.run->horizon()));
        std::printf("        %s\n",
                    format_runtime_counters(v.counters).c_str());
        for (const std::string& viol : v.coord.violations) {
          std::printf("        violation: %s\n", viol.c_str());
        }
      }
    }

    std::printf("soak: %d/%d conformant, %d budget-exceeded, "
                "%d/%d runs with eventually-strong accuracy\n",
                conformant, o.runs, budget_trips, accuracy_stabilized, o.runs);
    std::printf("totals: %s\n", format_runtime_counters(total).c_str());
    return conformant == o.runs ? 0 : 1;
  });
}
