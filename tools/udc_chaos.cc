// udc_chaos — chaos search driver: sweep generated fault scripts over one
// scenario (or the known † cells of Table 1) hunting DC1–DC3 violations,
// then shrink the witness and optionally write it as a replayable file.
//
//   build/tools/udc_chaos --protocol=majority --detector=none --n=5 --t=2 \
//       --iterations=64 --out=w.witness
//   build/tools/udc_chaos --table1          # sweep the necessity cells
//
// Exit 0 when every requested search found (and shrank) a witness, 1 when
// some search came up dry, 2 on bad flags.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "udc/chaos/chaos_engine.h"
#include "udc/chaos/registry.h"
#include "udc/chaos/witness.h"
#include "udc/common/guarded_main.h"

namespace {

using namespace udc;

struct Options {
  ChaosScenario scenario;
  int iterations = 64;
  std::uint64_t search_seed = 1;
  ScriptGenOptions gen;
  long long deadline_ms = 0;  // 0 = no deadline
  bool shrink = true;
  bool table1 = false;
  bool quiet = false;
  std::string out;  // witness file ("" = don't write)
};

[[noreturn]] void usage() {
  std::string oracles, protocols;
  for (const std::string& s : known_oracle_names()) {
    oracles += oracles.empty() ? s : "|" + s;
  }
  for (const std::string& s : known_protocol_names()) {
    protocols += protocols.empty() ? s : "|" + s;
  }
  std::fprintf(
      stderr,
      "usage: udc_chaos [flags]\n"
      "  --protocol=%s\n"
      "  --detector=%s\n"
      "  --n=<int> --t=<int> --horizon=<int> --grace=<int>\n"
      "  --drop=<float>        background i.i.d. loss (default 0)\n"
      "  --seed=<int>          scenario seed (default 1)\n"
      "  --spec=udc|nudc       which spec to check (default udc)\n"
      "  --iterations=<int>    scripts to try (default 64)\n"
      "  --search-seed=<int>   script-generation seed stream (default 1)\n"
      "  --max-crashes/--max-partitions/--max-silences/--max-bursts/"
      "--max-lies=<int>\n"
      "  --deadline-ms=<int>   wall-clock budget for each search\n"
      "  --no-shrink           keep the first witness as found\n"
      "  --out=<file>          write the (shrunk) witness for udc_replay\n"
      "  --table1              sweep the built-in Table 1 necessity cells\n"
      "  --quiet               only the per-search verdict lines\n",
      protocols.c_str(), oracles.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--protocol=", &v)) {
      o.scenario.protocol = v;
    } else if (eat("--detector=", &v)) {
      o.scenario.detector = v;
    } else if (eat("--n=", &v)) {
      o.scenario.n = std::stoi(v);
    } else if (eat("--t=", &v)) {
      o.scenario.t = std::stoi(v);
    } else if (eat("--horizon=", &v)) {
      o.scenario.horizon = std::stoll(v);
    } else if (eat("--grace=", &v)) {
      o.scenario.grace = std::stoll(v);
    } else if (eat("--drop=", &v)) {
      o.scenario.drop = std::stod(v);
    } else if (eat("--seed=", &v)) {
      o.scenario.seed = std::stoull(v);
    } else if (eat("--spec=", &v)) {
      o.scenario.spec = chaos_spec_by_name(v);
    } else if (eat("--iterations=", &v)) {
      o.iterations = std::stoi(v);
    } else if (eat("--search-seed=", &v)) {
      o.search_seed = std::stoull(v);
    } else if (eat("--max-crashes=", &v)) {
      o.gen.max_crashes = std::stoi(v);
    } else if (eat("--max-partitions=", &v)) {
      o.gen.max_partitions = std::stoi(v);
    } else if (eat("--max-silences=", &v)) {
      o.gen.max_silences = std::stoi(v);
    } else if (eat("--max-bursts=", &v)) {
      o.gen.max_bursts = std::stoi(v);
    } else if (eat("--max-lies=", &v)) {
      o.gen.max_lies = std::stoi(v);
    } else if (eat("--deadline-ms=", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (eat("--out=", &v)) {
      o.out = v;
    } else if (arg == "--no-shrink") {
      o.shrink = false;
    } else if (arg == "--table1") {
      o.table1 = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  return o;
}

// Runs one search (+ shrink, + witness write); returns true iff a witness
// was found.
bool hunt(const char* label, const Options& o, const ChaosScenario& scenario) {
  ChaosSearchOptions search;
  search.iterations = o.iterations;
  search.seed = o.search_seed;
  search.gen = o.gen;
  if (o.deadline_ms > 0) {
    search.budget.with_deadline(std::chrono::milliseconds(o.deadline_ms));
  }

  ChaosSearchResult result = search_violation(scenario, search);
  if (!result.witness) {
    std::printf("%-44s no violation in %d scripts [%s]\n", label,
                result.iterations_run, budget_status_name(result.status));
    return false;
  }

  ChaosWitness witness = *result.witness;
  const std::size_t found_size = witness.script.injection_count();
  if (o.shrink) witness = shrink_witness(witness);
  std::printf("%-44s VIOLATED after %d scripts; witness %zu -> %zu "
              "injections, horizon %lld -> %lld, n %d -> %d\n",
              label, result.iterations_run, found_size,
              witness.script.injection_count(),
              static_cast<long long>(scenario.horizon),
              static_cast<long long>(witness.scenario.horizon), scenario.n,
              witness.scenario.n);
  if (!o.quiet) {
    for (const std::string& v : witness.report.violations) {
      std::printf("    %s\n", v.c_str());
    }
    std::fputs(witness.script.format().c_str(), stdout);
  }
  if (!o.out.empty()) {
    std::ofstream out(o.out, std::ios::binary);
    UDC_CHECK(out.good(), "cannot open output file: " + o.out);
    out << format_witness(witness);
    std::printf("    wrote %s\n", o.out.c_str());
  }
  return true;
}

// The necessity (†) cells of Table 1 that a pure channel/crash adversary can
// break: protocols run OUTSIDE their advertised region, so some generated
// fault pattern must defeat them (bench_table1 proves the same cells with
// hand-rolled adversaries; here the scripts are found, not written).
struct Cell {
  const char* label;
  ChaosScenario scenario;
};

std::vector<Cell> table1_cells() {
  std::vector<Cell> cells;
  {
    // n/2 <= t < n-1, unreliable: majority echo without a detector ("t-useful
    // necessary").  Crashing a majority starves the echo quorum.
    Cell c{"majority n=5 t=3 unreliable (t-useful †)", {}};
    c.scenario.protocol = "majority";
    c.scenario.detector = "none";
    c.scenario.n = 5;
    c.scenario.t = 3;
    c.scenario.drop = 0.3;
    cells.push_back(c);
  }
  {
    // t >= n-1, unreliable: strong-FD broadcast without its detector
    // ("Perfect necessary").  With everyone else dead nobody relays.
    Cell c{"strongfd n=4 t=3 unreliable, no FD (Perfect †)", {}};
    c.scenario.protocol = "strongfd";
    c.scenario.detector = "none";
    c.scenario.n = 4;
    c.scenario.t = 3;
    c.scenario.drop = 0.3;
    cells.push_back(c);
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_chaos", [&] {
    Options o = parse(argc, argv);
    bool all_found = true;
    if (o.table1) {
      for (const Cell& cell : table1_cells()) {
        ChaosScenario scenario = cell.scenario;
        scenario.seed = o.scenario.seed;
        all_found &= hunt(cell.label, o, scenario);
      }
    } else {
      all_found &= hunt(
          (o.scenario.protocol + "/" + o.scenario.detector).c_str(), o,
          o.scenario);
    }
    return all_found ? 0 : 1;
  });
}
