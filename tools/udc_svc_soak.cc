// udc_svc_soak — the replicated coordination service under chaos at live
// load, many times over.
//
// Each run forks a fleet of udc_svc_node processes (svc/fleet.h), points
// open-loop clients at it, and fires one chaos arm WHILE the load runs:
// leader-kill (SIGKILL the majority-view leader, twice, relaunch epoch+1
// against the same disks), rolling (every replica killed and relaunched in
// turn), or partition (node 0 cut both ways at the socket, healing
// mid-run).  Every run's committed history is lifted from the WAL shards
// through the UNCHANGED DC1-DC3 checkers plus the linearizable-session and
// log-agreement checkers — the exit code is the conformance claim: every
// client-acknowledged write survived, exactly once, in session order, on
// every replica.
//
//   build/tools/udc_svc_soak                  # 50 runs, arms round-robin
//   build/tools/udc_svc_soak --runs=6 --quiet # CI-sized
//
// Exit 0 iff every run is conformant; 1 otherwise; 2 on bad flags.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "udc/common/guarded_main.h"
#include "udc/rt/remote/watchdog.h"
#include "udc/svc/fleet.h"

namespace {

using namespace udc;

struct Options {
  int runs = 50;
  int n = 3;
  std::uint64_t seed = 1;
  long long deadline_ms = 20'000;
  std::string dir;
  std::string node_binary;
  bool quiet = false;
  bool keep = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: udc_svc_soak [flags]\n"
      "  --runs=<int>         soak runs (default 50)\n"
      "  --n=<int>            fleet size (default 3)\n"
      "  --seed=<int>         base seed (run i uses seed+i)\n"
      "  --deadline-ms=<int>  per-run wall-clock budget\n"
      "  --dir=<path>         scratch root for shards and logs\n"
      "  --node=<path>        udc_svc_node binary (default: sibling)\n"
      "  --keep               keep per-run scratch directories\n"
      "  --quiet              summary lines only\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* out) {
      std::size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(len);
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--runs=", &v)) {
      o.runs = std::stoi(v);
    } else if (eat("--n=", &v)) {
      o.n = std::stoi(v);
    } else if (eat("--seed=", &v)) {
      o.seed = std::stoull(v);
    } else if (eat("--deadline-ms=", &v)) {
      o.deadline_ms = std::stoll(v);
    } else if (eat("--dir=", &v)) {
      o.dir = v;
    } else if (eat("--node=", &v)) {
      o.node_binary = v;
    } else if (arg == "--keep") {
      o.keep = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--help") {
      usage();
    } else {
      std::fprintf(stderr, "udc_svc_soak: unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  if (o.runs < 0 || o.n < 2 || o.n > kMaxProcesses || o.deadline_ms < 1) {
    std::fprintf(stderr, "udc_svc_soak: flag out of range\n");
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  return udc::guarded_main("udc_svc_soak", [&] {
    Options o = parse(argc, argv);

    std::string node_binary = o.node_binary;
    if (node_binary.empty()) {
      node_binary = (std::filesystem::path(argv[0]).parent_path() /
                     "udc_svc_node")
                        .string();
    }
    if (!std::filesystem::exists(node_binary)) {
      std::fprintf(stderr, "udc_svc_soak: node binary not found: %s\n",
                   node_binary.c_str());
      usage();
    }
    std::string root = o.dir;
    if (root.empty()) {
      root = (std::filesystem::temp_directory_path() /
              ("udc_svc_soak." + std::to_string(::getpid())))
                 .string();
    }
    std::filesystem::create_directories(root);

    static const SvcChaosArm kArms[] = {SvcChaosArm::kLeaderKill,
                                        SvcChaosArm::kRolling,
                                        SvcChaosArm::kPartition};
    RuntimeCounters total;
    int conformant = 0;
    int budget_trips = 0;
    for (int i = 0; i < o.runs; ++i) {
      const std::string run_dir =
          (std::filesystem::path(root) / ("run-" + std::to_string(i)))
              .string();
      SvcFleetOptions f;
      f.n = o.n;
      f.arm = kArms[i % 3];
      f.seed = o.seed + static_cast<std::uint64_t>(i);
      f.run_dir = run_dir;
      f.node_binary = node_binary;
      f.deadline = std::chrono::milliseconds(o.deadline_ms);
      ArmWatchdog dog(
          std::chrono::milliseconds(3 * o.deadline_ms + 15'000), [&] {
            std::fprintf(stderr,
                         "watchdog: run %d (arm %s, seed %llu) hung; "
                         "dumping %s\n",
                         i, svc_chaos_arm_name(f.arm),
                         static_cast<unsigned long long>(f.seed),
                         run_dir.c_str());
            dump_run_dir_diagnostics(run_dir);
          });
      SvcFleetVerdict v = run_svc_fleet(f);
      dog.cancel();
      total.merge(v.counters);
      conformant += v.conformant ? 1 : 0;
      budget_trips += v.status == BudgetStatus::kBudgetExceeded ? 1 : 0;
      if (!o.quiet || !v.conformant) {
        std::printf(
            "run %3d arm=%-11s seed=%-4llu status=%s conformant=%d "
            "clean_exits=%d done=%llu ops/s=%.0f p99=%.1fms\n",
            i, svc_chaos_arm_name(f.arm),
            static_cast<unsigned long long>(f.seed),
            budget_status_name(v.status), v.conformant ? 1 : 0,
            v.clean_exits ? 1 : 0,
            static_cast<unsigned long long>(v.completions), v.ops_per_sec,
            v.latency.p99_ms);
        std::printf("        %s\n",
                    format_runtime_counters(v.counters).c_str());
        for (const std::string& viol : v.coord.violations) {
          std::printf("        coord violation: %s\n", viol.c_str());
        }
        for (const std::string& viol : v.sessions.violations) {
          std::printf("        session violation: %s\n", viol.c_str());
        }
        for (const std::string& viol : v.log_agreement.violations) {
          std::printf("        log violation: %s\n", viol.c_str());
        }
      }
      if (!o.keep) {
        std::error_code ec;
        std::filesystem::remove_all(run_dir, ec);
      }
    }
    if (!o.keep) {
      std::error_code ec;
      std::filesystem::remove_all(root, ec);
    }

    std::printf("svc-soak: %d/%d conformant, %d budget-exceeded\n",
                conformant, o.runs, budget_trips);
    std::printf("totals: %s\n", format_runtime_counters(total).c_str());
    return conformant == o.runs ? 0 : 1;
  });
}
