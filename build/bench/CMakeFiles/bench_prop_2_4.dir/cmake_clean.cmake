file(REMOVE_RECURSE
  "CMakeFiles/bench_prop_2_4.dir/bench_prop_2_4.cc.o"
  "CMakeFiles/bench_prop_2_4.dir/bench_prop_2_4.cc.o.d"
  "bench_prop_2_4"
  "bench_prop_2_4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop_2_4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
