# Empty dependencies file for bench_prop_2_4.
# This may be replaced when dependencies are built.
