file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_conversions.dir/bench_fd_conversions.cc.o"
  "CMakeFiles/bench_fd_conversions.dir/bench_fd_conversions.cc.o.d"
  "bench_fd_conversions"
  "bench_fd_conversions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_conversions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
