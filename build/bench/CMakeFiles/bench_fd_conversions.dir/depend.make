# Empty dependencies file for bench_fd_conversions.
# This may be replaced when dependencies are built.
