file(REMOVE_RECURSE
  "CMakeFiles/bench_atd_weakest.dir/bench_atd_weakest.cc.o"
  "CMakeFiles/bench_atd_weakest.dir/bench_atd_weakest.cc.o.d"
  "bench_atd_weakest"
  "bench_atd_weakest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atd_weakest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
