# Empty compiler generated dependencies file for bench_atd_weakest.
# This may be replaced when dependencies are built.
