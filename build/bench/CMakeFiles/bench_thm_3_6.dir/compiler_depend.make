# Empty compiler generated dependencies file for bench_thm_3_6.
# This may be replaced when dependencies are built.
