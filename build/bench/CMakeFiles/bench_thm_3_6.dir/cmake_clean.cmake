file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_3_6.dir/bench_thm_3_6.cc.o"
  "CMakeFiles/bench_thm_3_6.dir/bench_thm_3_6.cc.o.d"
  "bench_thm_3_6"
  "bench_thm_3_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_3_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
