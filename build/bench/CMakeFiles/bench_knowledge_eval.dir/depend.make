# Empty dependencies file for bench_knowledge_eval.
# This may be replaced when dependencies are built.
