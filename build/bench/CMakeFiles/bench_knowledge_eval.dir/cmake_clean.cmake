file(REMOVE_RECURSE
  "CMakeFiles/bench_knowledge_eval.dir/bench_knowledge_eval.cc.o"
  "CMakeFiles/bench_knowledge_eval.dir/bench_knowledge_eval.cc.o.d"
  "bench_knowledge_eval"
  "bench_knowledge_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knowledge_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
