# Empty dependencies file for bench_prop_2_3.
# This may be replaced when dependencies are built.
