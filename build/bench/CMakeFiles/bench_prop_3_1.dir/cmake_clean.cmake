file(REMOVE_RECURSE
  "CMakeFiles/bench_prop_3_1.dir/bench_prop_3_1.cc.o"
  "CMakeFiles/bench_prop_3_1.dir/bench_prop_3_1.cc.o.d"
  "bench_prop_3_1"
  "bench_prop_3_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop_3_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
