# Empty compiler generated dependencies file for bench_ablation_fd_quality.
# This may be replaced when dependencies are built.
