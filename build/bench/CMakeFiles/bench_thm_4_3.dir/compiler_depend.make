# Empty compiler generated dependencies file for bench_thm_4_3.
# This may be replaced when dependencies are built.
