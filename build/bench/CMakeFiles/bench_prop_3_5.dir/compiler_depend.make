# Empty compiler generated dependencies file for bench_prop_3_5.
# This may be replaced when dependencies are built.
