# Empty dependencies file for bench_fd_lattice.
# This may be replaced when dependencies are built.
