file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_lattice.dir/bench_fd_lattice.cc.o"
  "CMakeFiles/bench_fd_lattice.dir/bench_fd_lattice.cc.o.d"
  "bench_fd_lattice"
  "bench_fd_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
