# Empty compiler generated dependencies file for udc_explore.
# This may be replaced when dependencies are built.
