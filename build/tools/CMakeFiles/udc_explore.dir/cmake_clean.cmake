file(REMOVE_RECURSE
  "CMakeFiles/udc_explore.dir/udc_explore.cc.o"
  "CMakeFiles/udc_explore.dir/udc_explore.cc.o.d"
  "udc_explore"
  "udc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
