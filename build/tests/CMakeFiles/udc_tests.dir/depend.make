# Empty dependencies file for udc_tests.
# This may be replaced when dependencies are built.
