
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adversary.cc" "tests/CMakeFiles/udc_tests.dir/test_adversary.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_adversary.cc.o.d"
  "/root/repo/tests/test_assumptions.cc" "tests/CMakeFiles/udc_tests.dir/test_assumptions.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_assumptions.cc.o.d"
  "/root/repo/tests/test_atd.cc" "tests/CMakeFiles/udc_tests.dir/test_atd.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_atd.cc.o.d"
  "/root/repo/tests/test_causality.cc" "tests/CMakeFiles/udc_tests.dir/test_causality.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_causality.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/udc_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_consensus.cc" "tests/CMakeFiles/udc_tests.dir/test_consensus.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_consensus.cc.o.d"
  "/root/repo/tests/test_consensus_units.cc" "tests/CMakeFiles/udc_tests.dir/test_consensus_units.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_consensus_units.cc.o.d"
  "/root/repo/tests/test_coord_spec.cc" "tests/CMakeFiles/udc_tests.dir/test_coord_spec.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_coord_spec.cc.o.d"
  "/root/repo/tests/test_event.cc" "tests/CMakeFiles/udc_tests.dir/test_event.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_event.cc.o.d"
  "/root/repo/tests/test_fd_convert.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_convert.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_convert.cc.o.d"
  "/root/repo/tests/test_fd_eventually.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_eventually.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_eventually.cc.o.d"
  "/root/repo/tests/test_fd_lattice.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_lattice.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_lattice.cc.o.d"
  "/root/repo/tests/test_fd_oracles.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_oracles.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_oracles.cc.o.d"
  "/root/repo/tests/test_fd_properties.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_properties.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_properties.cc.o.d"
  "/root/repo/tests/test_fd_quality.cc" "tests/CMakeFiles/udc_tests.dir/test_fd_quality.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fd_quality.cc.o.d"
  "/root/repo/tests/test_fip.cc" "tests/CMakeFiles/udc_tests.dir/test_fip.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_fip.cc.o.d"
  "/root/repo/tests/test_generalized_fd.cc" "tests/CMakeFiles/udc_tests.dir/test_generalized_fd.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_generalized_fd.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/udc_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/udc_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_knowledge_fd.cc" "tests/CMakeFiles/udc_tests.dir/test_knowledge_fd.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_knowledge_fd.cc.o.d"
  "/root/repo/tests/test_logic.cc" "tests/CMakeFiles/udc_tests.dir/test_logic.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_logic.cc.o.d"
  "/root/repo/tests/test_logic_ck.cc" "tests/CMakeFiles/udc_tests.dir/test_logic_ck.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_logic_ck.cc.o.d"
  "/root/repo/tests/test_logic_properties.cc" "tests/CMakeFiles/udc_tests.dir/test_logic_properties.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_logic_properties.cc.o.d"
  "/root/repo/tests/test_majority.cc" "tests/CMakeFiles/udc_tests.dir/test_majority.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_majority.cc.o.d"
  "/root/repo/tests/test_metrics_kbp.cc" "tests/CMakeFiles/udc_tests.dir/test_metrics_kbp.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_metrics_kbp.cc.o.d"
  "/root/repo/tests/test_more_properties.cc" "tests/CMakeFiles/udc_tests.dir/test_more_properties.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_more_properties.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/udc_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/udc_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_proc_set.cc" "tests/CMakeFiles/udc_tests.dir/test_proc_set.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_proc_set.cc.o.d"
  "/root/repo/tests/test_property_sweeps.cc" "tests/CMakeFiles/udc_tests.dir/test_property_sweeps.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_property_sweeps.cc.o.d"
  "/root/repo/tests/test_protocols.cc" "tests/CMakeFiles/udc_tests.dir/test_protocols.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_protocols.cc.o.d"
  "/root/repo/tests/test_quiescence.cc" "tests/CMakeFiles/udc_tests.dir/test_quiescence.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_quiescence.cc.o.d"
  "/root/repo/tests/test_regressions.cc" "tests/CMakeFiles/udc_tests.dir/test_regressions.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_regressions.cc.o.d"
  "/root/repo/tests/test_run.cc" "tests/CMakeFiles/udc_tests.dir/test_run.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_run.cc.o.d"
  "/root/repo/tests/test_sim_semantics.cc" "tests/CMakeFiles/udc_tests.dir/test_sim_semantics.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_sim_semantics.cc.o.d"
  "/root/repo/tests/test_simulate_fd.cc" "tests/CMakeFiles/udc_tests.dir/test_simulate_fd.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_simulate_fd.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/udc_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/udc_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/udc_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_urb.cc" "tests/CMakeFiles/udc_tests.dir/test_urb.cc.o" "gcc" "tests/CMakeFiles/udc_tests.dir/test_urb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_kt.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
