# Empty dependencies file for uniform_multicast.
# This may be replaced when dependencies are built.
