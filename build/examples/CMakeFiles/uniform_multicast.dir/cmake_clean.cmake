file(REMOVE_RECURSE
  "CMakeFiles/uniform_multicast.dir/uniform_multicast.cc.o"
  "CMakeFiles/uniform_multicast.dir/uniform_multicast.cc.o.d"
  "uniform_multicast"
  "uniform_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
