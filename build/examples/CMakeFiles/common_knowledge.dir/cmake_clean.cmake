file(REMOVE_RECURSE
  "CMakeFiles/common_knowledge.dir/common_knowledge.cc.o"
  "CMakeFiles/common_knowledge.dir/common_knowledge.cc.o.d"
  "common_knowledge"
  "common_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
