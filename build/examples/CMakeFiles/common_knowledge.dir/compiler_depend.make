# Empty compiler generated dependencies file for common_knowledge.
# This may be replaced when dependencies are built.
