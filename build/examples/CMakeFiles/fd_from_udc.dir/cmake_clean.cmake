file(REMOVE_RECURSE
  "CMakeFiles/fd_from_udc.dir/fd_from_udc.cc.o"
  "CMakeFiles/fd_from_udc.dir/fd_from_udc.cc.o.d"
  "fd_from_udc"
  "fd_from_udc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_from_udc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
