# Empty compiler generated dependencies file for fd_from_udc.
# This may be replaced when dependencies are built.
