file(REMOVE_RECURSE
  "CMakeFiles/attack_retreat.dir/attack_retreat.cc.o"
  "CMakeFiles/attack_retreat.dir/attack_retreat.cc.o.d"
  "attack_retreat"
  "attack_retreat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_retreat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
