# Empty compiler generated dependencies file for attack_retreat.
# This may be replaced when dependencies are built.
