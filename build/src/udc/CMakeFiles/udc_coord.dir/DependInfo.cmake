
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/coord/action.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/action.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/action.cc.o.d"
  "/root/repo/src/udc/coord/metrics.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/metrics.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/metrics.cc.o.d"
  "/root/repo/src/udc/coord/nudc_protocol.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/nudc_protocol.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/nudc_protocol.cc.o.d"
  "/root/repo/src/udc/coord/spec.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/spec.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/spec.cc.o.d"
  "/root/repo/src/udc/coord/udc_atd.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_atd.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_atd.cc.o.d"
  "/root/repo/src/udc/coord/udc_fip.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_fip.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_fip.cc.o.d"
  "/root/repo/src/udc/coord/udc_generalized.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_generalized.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_generalized.cc.o.d"
  "/root/repo/src/udc/coord/udc_majority.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_majority.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_majority.cc.o.d"
  "/root/repo/src/udc/coord/udc_reliable.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_reliable.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_reliable.cc.o.d"
  "/root/repo/src/udc/coord/udc_strongfd.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_strongfd.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/udc_strongfd.cc.o.d"
  "/root/repo/src/udc/coord/urb.cc" "src/udc/CMakeFiles/udc_coord.dir/coord/urb.cc.o" "gcc" "src/udc/CMakeFiles/udc_coord.dir/coord/urb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
