file(REMOVE_RECURSE
  "libudc_coord.a"
)
