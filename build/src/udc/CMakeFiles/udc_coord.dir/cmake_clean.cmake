file(REMOVE_RECURSE
  "CMakeFiles/udc_coord.dir/coord/action.cc.o"
  "CMakeFiles/udc_coord.dir/coord/action.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/metrics.cc.o"
  "CMakeFiles/udc_coord.dir/coord/metrics.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/nudc_protocol.cc.o"
  "CMakeFiles/udc_coord.dir/coord/nudc_protocol.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/spec.cc.o"
  "CMakeFiles/udc_coord.dir/coord/spec.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_atd.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_atd.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_fip.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_fip.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_generalized.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_generalized.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_majority.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_majority.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_reliable.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_reliable.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/udc_strongfd.cc.o"
  "CMakeFiles/udc_coord.dir/coord/udc_strongfd.cc.o.d"
  "CMakeFiles/udc_coord.dir/coord/urb.cc.o"
  "CMakeFiles/udc_coord.dir/coord/urb.cc.o.d"
  "libudc_coord.a"
  "libudc_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
