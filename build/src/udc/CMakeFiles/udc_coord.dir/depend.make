# Empty dependencies file for udc_coord.
# This may be replaced when dependencies are built.
