file(REMOVE_RECURSE
  "libudc_event.a"
)
