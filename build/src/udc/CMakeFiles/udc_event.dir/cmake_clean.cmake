file(REMOVE_RECURSE
  "CMakeFiles/udc_event.dir/event/causality.cc.o"
  "CMakeFiles/udc_event.dir/event/causality.cc.o.d"
  "CMakeFiles/udc_event.dir/event/event.cc.o"
  "CMakeFiles/udc_event.dir/event/event.cc.o.d"
  "CMakeFiles/udc_event.dir/event/fairness.cc.o"
  "CMakeFiles/udc_event.dir/event/fairness.cc.o.d"
  "CMakeFiles/udc_event.dir/event/run.cc.o"
  "CMakeFiles/udc_event.dir/event/run.cc.o.d"
  "CMakeFiles/udc_event.dir/event/system.cc.o"
  "CMakeFiles/udc_event.dir/event/system.cc.o.d"
  "CMakeFiles/udc_event.dir/event/trace.cc.o"
  "CMakeFiles/udc_event.dir/event/trace.cc.o.d"
  "libudc_event.a"
  "libudc_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
