
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/event/causality.cc" "src/udc/CMakeFiles/udc_event.dir/event/causality.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/causality.cc.o.d"
  "/root/repo/src/udc/event/event.cc" "src/udc/CMakeFiles/udc_event.dir/event/event.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/event.cc.o.d"
  "/root/repo/src/udc/event/fairness.cc" "src/udc/CMakeFiles/udc_event.dir/event/fairness.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/fairness.cc.o.d"
  "/root/repo/src/udc/event/run.cc" "src/udc/CMakeFiles/udc_event.dir/event/run.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/run.cc.o.d"
  "/root/repo/src/udc/event/system.cc" "src/udc/CMakeFiles/udc_event.dir/event/system.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/system.cc.o.d"
  "/root/repo/src/udc/event/trace.cc" "src/udc/CMakeFiles/udc_event.dir/event/trace.cc.o" "gcc" "src/udc/CMakeFiles/udc_event.dir/event/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
