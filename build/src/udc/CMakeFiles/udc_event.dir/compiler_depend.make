# Empty compiler generated dependencies file for udc_event.
# This may be replaced when dependencies are built.
