file(REMOVE_RECURSE
  "libudc_kt.a"
)
