
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/kt/assumptions.cc" "src/udc/CMakeFiles/udc_kt.dir/kt/assumptions.cc.o" "gcc" "src/udc/CMakeFiles/udc_kt.dir/kt/assumptions.cc.o.d"
  "/root/repo/src/udc/kt/kbp.cc" "src/udc/CMakeFiles/udc_kt.dir/kt/kbp.cc.o" "gcc" "src/udc/CMakeFiles/udc_kt.dir/kt/kbp.cc.o.d"
  "/root/repo/src/udc/kt/knowledge_fd.cc" "src/udc/CMakeFiles/udc_kt.dir/kt/knowledge_fd.cc.o" "gcc" "src/udc/CMakeFiles/udc_kt.dir/kt/knowledge_fd.cc.o.d"
  "/root/repo/src/udc/kt/simulate_fd.cc" "src/udc/CMakeFiles/udc_kt.dir/kt/simulate_fd.cc.o" "gcc" "src/udc/CMakeFiles/udc_kt.dir/kt/simulate_fd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
