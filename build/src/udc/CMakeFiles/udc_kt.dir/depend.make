# Empty dependencies file for udc_kt.
# This may be replaced when dependencies are built.
