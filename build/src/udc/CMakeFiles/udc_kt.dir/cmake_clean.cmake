file(REMOVE_RECURSE
  "CMakeFiles/udc_kt.dir/kt/assumptions.cc.o"
  "CMakeFiles/udc_kt.dir/kt/assumptions.cc.o.d"
  "CMakeFiles/udc_kt.dir/kt/kbp.cc.o"
  "CMakeFiles/udc_kt.dir/kt/kbp.cc.o.d"
  "CMakeFiles/udc_kt.dir/kt/knowledge_fd.cc.o"
  "CMakeFiles/udc_kt.dir/kt/knowledge_fd.cc.o.d"
  "CMakeFiles/udc_kt.dir/kt/simulate_fd.cc.o"
  "CMakeFiles/udc_kt.dir/kt/simulate_fd.cc.o.d"
  "libudc_kt.a"
  "libudc_kt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_kt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
