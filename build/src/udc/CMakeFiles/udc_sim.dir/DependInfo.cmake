
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/sim/adversary.cc" "src/udc/CMakeFiles/udc_sim.dir/sim/adversary.cc.o" "gcc" "src/udc/CMakeFiles/udc_sim.dir/sim/adversary.cc.o.d"
  "/root/repo/src/udc/sim/crash_schedule.cc" "src/udc/CMakeFiles/udc_sim.dir/sim/crash_schedule.cc.o" "gcc" "src/udc/CMakeFiles/udc_sim.dir/sim/crash_schedule.cc.o.d"
  "/root/repo/src/udc/sim/simulator.cc" "src/udc/CMakeFiles/udc_sim.dir/sim/simulator.cc.o" "gcc" "src/udc/CMakeFiles/udc_sim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/udc/sim/system_factory.cc" "src/udc/CMakeFiles/udc_sim.dir/sim/system_factory.cc.o" "gcc" "src/udc/CMakeFiles/udc_sim.dir/sim/system_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
