file(REMOVE_RECURSE
  "CMakeFiles/udc_sim.dir/sim/adversary.cc.o"
  "CMakeFiles/udc_sim.dir/sim/adversary.cc.o.d"
  "CMakeFiles/udc_sim.dir/sim/crash_schedule.cc.o"
  "CMakeFiles/udc_sim.dir/sim/crash_schedule.cc.o.d"
  "CMakeFiles/udc_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/udc_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/udc_sim.dir/sim/system_factory.cc.o"
  "CMakeFiles/udc_sim.dir/sim/system_factory.cc.o.d"
  "libudc_sim.a"
  "libudc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
