# Empty compiler generated dependencies file for udc_fd.
# This may be replaced when dependencies are built.
