file(REMOVE_RECURSE
  "libudc_fd.a"
)
