
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/fd/atd.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/atd.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/atd.cc.o.d"
  "/root/repo/src/udc/fd/convert.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/convert.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/convert.cc.o.d"
  "/root/repo/src/udc/fd/generalized.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/generalized.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/generalized.cc.o.d"
  "/root/repo/src/udc/fd/lattice.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/lattice.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/lattice.cc.o.d"
  "/root/repo/src/udc/fd/oracle.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/oracle.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/oracle.cc.o.d"
  "/root/repo/src/udc/fd/properties.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/properties.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/properties.cc.o.d"
  "/root/repo/src/udc/fd/quality.cc" "src/udc/CMakeFiles/udc_fd.dir/fd/quality.cc.o" "gcc" "src/udc/CMakeFiles/udc_fd.dir/fd/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
