file(REMOVE_RECURSE
  "CMakeFiles/udc_fd.dir/fd/atd.cc.o"
  "CMakeFiles/udc_fd.dir/fd/atd.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/convert.cc.o"
  "CMakeFiles/udc_fd.dir/fd/convert.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/generalized.cc.o"
  "CMakeFiles/udc_fd.dir/fd/generalized.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/lattice.cc.o"
  "CMakeFiles/udc_fd.dir/fd/lattice.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/oracle.cc.o"
  "CMakeFiles/udc_fd.dir/fd/oracle.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/properties.cc.o"
  "CMakeFiles/udc_fd.dir/fd/properties.cc.o.d"
  "CMakeFiles/udc_fd.dir/fd/quality.cc.o"
  "CMakeFiles/udc_fd.dir/fd/quality.cc.o.d"
  "libudc_fd.a"
  "libudc_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
