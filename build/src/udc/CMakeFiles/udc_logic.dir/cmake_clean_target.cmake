file(REMOVE_RECURSE
  "libudc_logic.a"
)
