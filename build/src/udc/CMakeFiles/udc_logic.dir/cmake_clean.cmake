file(REMOVE_RECURSE
  "CMakeFiles/udc_logic.dir/logic/eval.cc.o"
  "CMakeFiles/udc_logic.dir/logic/eval.cc.o.d"
  "CMakeFiles/udc_logic.dir/logic/formula.cc.o"
  "CMakeFiles/udc_logic.dir/logic/formula.cc.o.d"
  "CMakeFiles/udc_logic.dir/logic/properties.cc.o"
  "CMakeFiles/udc_logic.dir/logic/properties.cc.o.d"
  "libudc_logic.a"
  "libudc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
