# Empty compiler generated dependencies file for udc_logic.
# This may be replaced when dependencies are built.
