
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udc/logic/eval.cc" "src/udc/CMakeFiles/udc_logic.dir/logic/eval.cc.o" "gcc" "src/udc/CMakeFiles/udc_logic.dir/logic/eval.cc.o.d"
  "/root/repo/src/udc/logic/formula.cc" "src/udc/CMakeFiles/udc_logic.dir/logic/formula.cc.o" "gcc" "src/udc/CMakeFiles/udc_logic.dir/logic/formula.cc.o.d"
  "/root/repo/src/udc/logic/properties.cc" "src/udc/CMakeFiles/udc_logic.dir/logic/properties.cc.o" "gcc" "src/udc/CMakeFiles/udc_logic.dir/logic/properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/udc/CMakeFiles/udc_event.dir/DependInfo.cmake"
  "/root/repo/build/src/udc/CMakeFiles/udc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
