file(REMOVE_RECURSE
  "CMakeFiles/udc_net.dir/net/network.cc.o"
  "CMakeFiles/udc_net.dir/net/network.cc.o.d"
  "libudc_net.a"
  "libudc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
