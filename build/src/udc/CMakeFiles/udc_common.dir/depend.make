# Empty dependencies file for udc_common.
# This may be replaced when dependencies are built.
