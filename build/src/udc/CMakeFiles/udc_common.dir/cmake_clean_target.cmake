file(REMOVE_RECURSE
  "libudc_common.a"
)
