file(REMOVE_RECURSE
  "CMakeFiles/udc_common.dir/common/proc_set.cc.o"
  "CMakeFiles/udc_common.dir/common/proc_set.cc.o.d"
  "libudc_common.a"
  "libudc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
