file(REMOVE_RECURSE
  "CMakeFiles/udc_consensus.dir/consensus/ct_strong.cc.o"
  "CMakeFiles/udc_consensus.dir/consensus/ct_strong.cc.o.d"
  "CMakeFiles/udc_consensus.dir/consensus/rotating.cc.o"
  "CMakeFiles/udc_consensus.dir/consensus/rotating.cc.o.d"
  "CMakeFiles/udc_consensus.dir/consensus/spec.cc.o"
  "CMakeFiles/udc_consensus.dir/consensus/spec.cc.o.d"
  "libudc_consensus.a"
  "libudc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
