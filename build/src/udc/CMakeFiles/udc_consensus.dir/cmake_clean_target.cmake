file(REMOVE_RECURSE
  "libudc_consensus.a"
)
