# Empty compiler generated dependencies file for udc_consensus.
# This may be replaced when dependencies are built.
