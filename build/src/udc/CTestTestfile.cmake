# CMake generated Testfile for 
# Source directory: /root/repo/src/udc
# Build directory: /root/repo/build/src/udc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
